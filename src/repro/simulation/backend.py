"""The unified simulation backend protocol.

The repository grew three simulators with three bespoke entry points:
the fast flit-level TDM simulator (:mod:`repro.simulation.flitsim`), the
cycle-accurate multi-clock model (:mod:`repro.simulation.cyclesim`) and
the best-effort wormhole baseline (:mod:`repro.baseline.be_network`).
Every experiment invented its own glue to drive them.  This module is
the single seam they all plug into:

* :class:`SimRequest` — *what* to simulate: a horizon in flit cycles, a
  traffic assignment, a seed for backends with randomised state
  (mesochronous phases, plesiochronous drift) and an optional operating
  frequency override for backends that support retiming;
* :class:`SimResult` — *what came out*, in one schema: the shared
  :class:`~repro.simulation.monitors.StatsCollector` record log, the
  composability trace (reconstructed from the record log for backends
  that do not collect one natively), latency/throughput summaries, a
  backend-independent *logical flit schedule* for equivalence checking,
  and a JSON-serializable record for campaign aggregation;
* :class:`SimulationBackend` — the protocol itself: construct with a
  validated :class:`~repro.core.configuration.NocConfiguration` plus
  backend-specific options, then ``run(request)`` any number of times.

Backends are registered by name (``"flit"``, ``"cycle"``, ``"be"``) so
declarative campaign specs can name them without importing simulator
classes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.configuration import NocConfiguration
from repro.core.exceptions import ConfigurationError
from repro.core.timeline import ReconfigurationTimeline
from repro.core.words import WordFormat
from repro.simulation.monitors import (LatencySummary, StatsCollector,
                                       TraceRecorder, latency_digest)
from repro.simulation.traffic import TrafficPattern
from repro.telemetry.hub import coalesce

__all__ = ["SimRequest", "SimResult", "SimulationBackend",
           "FlitLevelBackend", "CycleAccurateBackend", "BestEffortBackend",
           "available_backends", "create_backend"]


@dataclass(frozen=True)
class SimRequest:
    """One simulation job, independent of which backend executes it.

    Parameters
    ----------
    n_slots:
        Horizon in flit cycles (TDM slots for the GS simulators, wormhole
        ticks for the best-effort baseline).
    traffic:
        Traffic pattern per channel name; channels absent from the map
        stay silent but keep their resource reservations.
    seed:
        Seed for backends with randomised physical state (mesochronous
        phase offsets, plesiochronous drift).  Purely logical backends
        ignore it, so equal requests stay comparable across backends.
    frequency_hz:
        Operating-frequency override for backends that support retiming
        without reallocation (the best-effort baseline's frequency
        sweep).  TDM backends reject an override: their slot tables are
        allocated for the configuration's frequency.
    timeline:
        Optional :class:`~repro.core.timeline.ReconfigurationTimeline`
        of live start/stop transitions to execute instead of a static
        channel set.  The channel universe then comes from the
        timeline's events; traffic names must refer to timeline
        channels.  Backends that cannot reconfigure mid-run (the
        cycle-accurate model) reject timeline requests.
    """

    n_slots: int
    traffic: Mapping[str, TrafficPattern] = field(default_factory=dict)
    seed: int = 1
    frequency_hz: float | None = None
    timeline: ReconfigurationTimeline | None = None

    def __post_init__(self) -> None:
        if self.n_slots <= 0:
            raise ConfigurationError(
                f"n_slots must be positive, got {self.n_slots}")
        if self.frequency_hz is not None and self.frequency_hz <= 0:
            raise ConfigurationError("frequency_hz override must be positive")
        if self.timeline is not None and \
                self.n_slots > self.timeline.horizon_slots:
            raise ConfigurationError(
                f"n_slots {self.n_slots} exceeds the timeline horizon "
                f"of {self.timeline.horizon_slots} slots")


@dataclass
class SimResult:
    """Uniform result schema shared by every backend.

    ``stats`` is the ground truth: the per-channel injection/delivery
    record log both simulators already emit.  Everything else — traces,
    summaries, logical schedules, campaign records — derives from it,
    which is what makes results comparable across backends.
    """

    backend: str
    stats: StatsCollector
    simulated_slots: int
    frequency_hz: float
    fmt: WordFormat
    trace: TraceRecorder | None = None
    meta: dict[str, object] = field(default_factory=dict)
    raw: object = None

    @property
    def period_ps(self) -> int:
        """Word-clock period of the run."""
        return round(1e12 / self.frequency_hz)

    @property
    def simulated_ns(self) -> float:
        """Simulated wall-clock time."""
        return (self.simulated_slots * self.fmt.flit_size /
                self.frequency_hz * 1e9)

    # -- derived views ---------------------------------------------------------

    def channel_latencies_ns(self, channel: str) -> list[float]:
        """Raw end-to-end message latencies of one channel."""
        return [d.latency_ns for d in self.stats.channel(channel).deliveries]

    def latency_summary(self, channel: str | None = None
                        ) -> LatencySummary | None:
        """Latency order statistics; over all channels when none named."""
        if channel is not None:
            deliveries = self.stats.channel(channel).deliveries
        else:
            deliveries = self.stats.all_deliveries()
        if not deliveries:
            return None
        return LatencySummary.of(d.latency_ns for d in deliveries)

    def logical_schedule(self, channel: str
                         ) -> tuple[tuple[int, int, int], ...]:
        """Backend-independent flit schedule of one channel.

        Each delivered message contributes ``(message_id, created_cycle,
        latency_cycles)``, ordered by creation then id.  Latency is
        measured on the wall clock and quantised to word cycles, so
        flit-level and cycle-accurate runs of the same configuration must
        produce identical schedules (the flit-synchronous abstraction is
        exact) regardless of each backend's internal cycle numbering.
        """
        entries = [
            (d.created_cycle, d.message_id,
             round(d.latency_ps / self.period_ps))
            for d in self.stats.channel(channel).deliveries]
        entries.sort()
        return tuple((mid, created, lat) for created, mid, lat in entries)

    def composability_trace(self) -> TraceRecorder:
        """The per-flit trace, reconstructing one from stats if needed.

        The flit-level simulator records a native trace; the detailed and
        best-effort models only emit stats records, from which an
        equivalent ``(message_id, final_injection_slot, delivery_cycle)``
        trace is rebuilt here.
        """
        if self.trace is not None:
            return self.trace
        rebuilt = TraceRecorder()
        for channel in self.stats.channels:
            channel_stats = self.stats.channel(channel)
            last_injection: dict[int, int] = {}
            for record in channel_stats.injections:
                last_injection[record.message_id] = record.slot_index
            for record in channel_stats.deliveries:
                rebuilt.record(channel, record.message_id,
                               last_injection.get(record.message_id, -1),
                               record.delivered_cycle)
        return rebuilt

    # -- presentation ----------------------------------------------------------

    def summary(self) -> str:
        """One-line latency digest for campaign logs and the REPL.

        Every backend names its execution path in ``meta["executor"]``
        (``"compiled"``/``"per-flit"`` for the flit backend,
        ``"cycle-accurate"``, ``"wormhole"``); the digest label carries
        it so logs show *which* engine produced the numbers.
        """
        label = self.backend
        executor = self.meta.get("executor")
        if executor:
            label = f"{label}[{executor}]"
        return latency_digest(label, self.stats,
                              self.simulated_slots, "slots",
                              self.frequency_hz)

    def __repr__(self) -> str:
        return f"SimResult({self.summary()})"

    def to_record(self) -> dict[str, object]:
        """JSON-serializable aggregate for campaign trajectories.

        Floats are rounded to fixed precision so serialisation is
        byte-stable across processes and platforms.
        """
        channels: dict[str, dict[str, object]] = {}
        for name in self.stats.channels:
            channel_stats = self.stats.channel(name)
            entry: dict[str, object] = {
                "messages": len(channel_stats.deliveries),
                "flits": len(channel_stats.injections),
                "delivered_bytes": channel_stats.delivered_bytes,
            }
            if channel_stats.deliveries:
                s = channel_stats.latency_summary()
                entry["latency_ns"] = {
                    "min": round(s.minimum, 3), "mean": round(s.mean, 3),
                    "p50": round(s.p50, 3), "p99": round(s.p99, 3),
                    "max": round(s.maximum, 3)}
            channels[name] = entry
        overall = self.latency_summary()
        return {
            "backend": self.backend,
            "simulated_slots": self.simulated_slots,
            "frequency_mhz": round(self.frequency_hz / 1e6, 3),
            "messages_delivered": len(self.stats.all_deliveries()),
            "latency_ns": None if overall is None else {
                "min": round(overall.minimum, 3),
                "mean": round(overall.mean, 3),
                "p50": round(overall.p50, 3),
                "p99": round(overall.p99, 3),
                "max": round(overall.maximum, 3)},
            "channels": channels,
        }


class SimulationBackend(ABC):
    """Protocol every simulator adapter implements.

    A backend binds one validated configuration plus backend-specific
    options at construction; :meth:`run` is then a pure function of the
    request (every call builds fresh simulator state), so one backend
    instance can serve many requests — the property the campaign engine
    relies on.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    def __init__(self, config: NocConfiguration, *, telemetry=None):
        self.config = config
        #: Instrumentation hub; the shared no-op singleton by default.
        self.telemetry = coalesce(telemetry)

    @abstractmethod
    def run(self, request: SimRequest) -> SimResult:
        """Execute one request and return the uniform result."""

    def _check_traffic(self, request: SimRequest) -> None:
        if request.timeline is not None:
            known = set(request.timeline.channel_names)
            universe = "timeline"
        else:
            known = set(self.config.allocation.channels)
            universe = "configuration"
        unknown = sorted(set(request.traffic) - known)
        if unknown:
            raise ConfigurationError(
                f"traffic names channels outside the {universe}: "
                f"{unknown}")

    def _check_timeline(self, request: SimRequest) -> None:
        timeline = request.timeline
        if timeline is None:
            return
        if timeline.topology is not self.config.topology:
            raise ConfigurationError(
                "timeline was recorded on a different topology object")
        if timeline.table_size != self.config.table_size:
            raise ConfigurationError(
                f"timeline table size {timeline.table_size} != "
                f"configuration table size {self.config.table_size}")
        if timeline.fmt != self.config.fmt:
            raise ConfigurationError(
                "timeline word format differs from the configuration's")

    def _reject_frequency_override(self, request: SimRequest) -> None:
        if request.frequency_hz is not None and \
                request.frequency_hz != self.config.frequency_hz:
            raise ConfigurationError(
                f"backend {self.name!r} cannot retime a TDM allocation; "
                "reallocate at the new frequency instead")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}("
                f"{len(self.config.allocation.channels)} channels)")


class FlitLevelBackend(SimulationBackend):
    """Fast flit-level TDM simulation (the paper's aelite network).

    ``recompile`` selects the schedule-recompilation strategy for
    timeline requests: ``"incremental"`` (default) rebuilds only the
    injection-slot rows a transition touches, ``"full"`` recompiles the
    whole schedule at every epoch boundary (the reference the tier-2
    benchmark compares against).  ``compiled`` forwards to
    :class:`~repro.simulation.flitsim.FlitLevelSimulator`: ``None``
    (default) auto-selects the compiled vectorised executor when numpy
    is available, ``True``/``False`` force a path;
    ``meta["executor"]`` reports which one actually ran.
    """

    name = "flit"

    def __init__(self, config: NocConfiguration, *,
                 flow_control: bool = False,
                 rx_buffer_words: int | None = None,
                 check_contention: bool = False,
                 recompile: str = "incremental",
                 compiled: bool | None = None,
                 telemetry=None):
        super().__init__(config, telemetry=telemetry)
        if recompile not in ("incremental", "full"):
            raise ConfigurationError(
                f"unknown recompile strategy {recompile!r}; expected "
                "'incremental' or 'full'")
        self.flow_control = flow_control
        self.rx_buffer_words = rx_buffer_words
        self.check_contention = check_contention
        self.recompile = recompile
        self.compiled = compiled

    def run(self, request: SimRequest) -> SimResult:
        from repro.simulation.flitsim import FlitLevelSimulator
        self._check_traffic(request)
        self._reject_frequency_override(request)
        sim = FlitLevelSimulator(
            self.config, flow_control=self.flow_control,
            rx_buffer_words=self.rx_buffer_words,
            check_contention=self.check_contention,
            compiled=self.compiled, telemetry=self.telemetry)
        if request.timeline is not None:
            # Shared compatibility checks here; the frequency rule
            # (TDM schedules cannot be retimed) is enforced by the
            # simulator itself, which direct callers also hit.
            self._check_timeline(request)
            result = sim.run_timeline(
                request.timeline, request.n_slots,
                traffic=dict(request.traffic),
                incremental=self.recompile == "incremental")
        else:
            for channel, pattern in sorted(request.traffic.items()):
                sim.set_traffic(channel, pattern)
            result = sim.run(request.n_slots)
        return SimResult(
            backend=self.name, stats=result.stats, trace=result.trace,
            simulated_slots=result.simulated_slots,
            frequency_hz=result.frequency_hz, fmt=result.fmt,
            meta={"stalled_slots_by_channel":
                  result.stalled_slots_by_channel,
                  "flits_by_channel": result.flits_by_channel,
                  "n_epochs": result.n_epochs,
                  "recompile": self.recompile,
                  "executor": ("compiled" if result.compiled
                               else "per-flit"),
                  "executor_stats": dict(result.executor_stats)},
            raw=result)


class CycleAccurateBackend(SimulationBackend):
    """Detailed word-level simulation on the multi-clock engine."""

    name = "cycle"

    def __init__(self, config: NocConfiguration, *,
                 clocking: str = "synchronous",
                 plesiochronous_ppm: float = 200.0,
                 rx_capacity_words: int = 256,
                 telemetry=None):
        super().__init__(config, telemetry=telemetry)
        self.clocking = clocking
        self.plesiochronous_ppm = plesiochronous_ppm
        self.rx_capacity_words = rx_capacity_words

    def run(self, request: SimRequest) -> SimResult:
        from repro.simulation.cyclesim import DetailedNetwork
        if request.timeline is not None:
            raise ConfigurationError(
                "backend 'cycle' cannot execute reconfiguration "
                "timelines; replay on 'flit' (TDM) or 'be'")
        self._check_traffic(request)
        self._reject_frequency_override(request)
        network = DetailedNetwork(
            self.config, clocking=self.clocking,
            mesochronous_seed=request.seed,
            plesiochronous_ppm=self.plesiochronous_ppm,
            traffic=dict(request.traffic),
            horizon_slots=request.n_slots,
            rx_capacity_words=self.rx_capacity_words)
        result = network.run(request.n_slots)
        self.telemetry.counter("executor.dispatch",
                               path="cycle-accurate").inc()
        return SimResult(
            backend=self.name, stats=result.stats,
            simulated_slots=request.n_slots,
            frequency_hz=result.frequency_hz, fmt=self.config.fmt,
            meta={"clocking": self.clocking,
                  "executor": "cycle-accurate",
                  "fifo_max_occupancy": result.fifo_max_occupancy,
                  "wrapper_firings": result.wrapper_firings,
                  "ni_counters": result.ni_counters},
            raw=result)


class BestEffortBackend(SimulationBackend):
    """Æthereal-style best-effort wormhole baseline (no TDM)."""

    name = "be"

    def __init__(self, config: NocConfiguration, *,
                 frequency_hz: float | None = None,
                 buffer_flits: int = 4,
                 max_packet_flits: int = 4,
                 telemetry=None):
        super().__init__(config, telemetry=telemetry)
        self.frequency_hz = frequency_hz
        self.buffer_flits = buffer_flits
        self.max_packet_flits = max_packet_flits

    def run(self, request: SimRequest) -> SimResult:
        from repro.baseline.be_network import BeNetworkSimulator
        self._check_traffic(request)
        frequency = (request.frequency_hz or self.frequency_hz or
                     self.config.frequency_hz)
        sim = BeNetworkSimulator(
            self.config, frequency_hz=frequency,
            buffer_flits=self.buffer_flits,
            max_packet_flits=self.max_packet_flits)
        if request.timeline is not None:
            self._check_timeline(request)
            result = sim.run_timeline(request.timeline, request.n_slots,
                                      traffic=dict(request.traffic))
        else:
            for channel, pattern in sorted(request.traffic.items()):
                sim.set_traffic(channel, pattern)
            result = sim.run(request.n_slots)
        self.telemetry.counter("executor.dispatch",
                               path="wormhole").inc()
        return SimResult(
            backend=self.name, stats=result.stats,
            simulated_slots=result.simulated_ticks,
            frequency_hz=result.frequency_hz, fmt=result.fmt,
            meta={"buffer_flits": self.buffer_flits,
                  "max_packet_flits": self.max_packet_flits,
                  "executor": "wormhole"},
            raw=result)


_REGISTRY: dict[str, Callable[..., SimulationBackend]] = {
    FlitLevelBackend.name: FlitLevelBackend,
    CycleAccurateBackend.name: CycleAccurateBackend,
    BestEffortBackend.name: BestEffortBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`create_backend`, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(kind: str, config: NocConfiguration,
                   **options) -> SimulationBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {kind!r}; expected one of "
            f"{available_backends()}")
    return factory(config, **options)
