"""The ``python -m repro replay --demo`` flow.

Round-trips a recorded service trace into simulated, verified traces:

1. run a seeded churn workload through the online control plane
   (:class:`~repro.service.controller.SessionService`) with timeline
   recording on;
2. fit the recorded start/stop trace into a simulation horizon as a
   :class:`~repro.core.timeline.ReconfigurationTimeline`;
3. execute the timeline on the flit-level TDM backend and verify
   dynamic composability — every surviving session's trace must be
   bit-identical to its solo reference across all reconfiguration
   epochs;
4. execute the same timeline on the best-effort baseline, where the
   same churn demonstrably perturbs the survivors.

The whole flow runs twice and the demo asserts the two canonical JSON
reports are byte-identical, the same self-check the campaign and serve
demos perform.

The demo topology is a 3x3 mesh with two NIs per router — denser than
the Section VII mesh relative to its size, so best-effort sharing
(queues, ports, buffers) between sessions is actually exercised.
"""

from __future__ import annotations

import json

from repro.simulation.backend import BestEffortBackend
from repro.simulation.composability import replay_traffic, verify_timeline
from repro.topology.builders import mesh

__all__ = ["run_replay_demo"]

#: The serve demo's operating point, on a denser (relative) mesh.
DEMO_TABLE_SIZE = 32
DEMO_FREQUENCY_HZ = 500e6


def run_replay_demo(*, n_events: int = 240, n_slots: int = 3000,
                    seed: int = 2009, telemetry=None, monitor=None
                    ) -> tuple[dict[str, object], str, bool]:
    """Run the replay demo twice; return (record, json, byte-identical?).

    The returned record carries the full timeline (every transition with
    its route and slots) plus the churn-vs-solo verdict per backend; the
    JSON string is its canonical serialisation.  ``telemetry``
    instruments the *first* run only (control plane and flit backend),
    so byte-identity doubles as the telemetry-leak check.  ``monitor``
    arms the conformance watchdog on the first run's flit-level
    verification; the resulting
    :class:`~repro.telemetry.monitor.ConformanceReport` is stashed
    under the record's ``"_conformance"`` key after the canonical JSON
    is rendered, preserving byte-identity monitor-on vs monitor-off.
    """
    # Local imports: campaign.spec imports service.churn which would
    # cycle through the package __init__s at module scope.
    from repro.campaign.spec import derive_seed
    from repro.service.churn import ChurnSpec, ChurnWorkload
    from repro.service.controller import SessionService
    from repro.simulation.backend import FlitLevelBackend
    from repro.telemetry.hub import coalesce

    tel = coalesce(telemetry)
    with tel.phase("workload"):
        topology = mesh(3, 3, nis_per_router=2)
        # Every session contributes at most two events; generate a small
        # surplus so truncation decides the stream length and some
        # sessions are still open at the cut — the replay's survivors.
        spec = ChurnSpec(n_sessions=max(1, (n_events + 1) // 2 + 8))
        workload = ChurnWorkload(spec, topology,
                                 derive_seed(seed, "replay-demo"))
        events = workload.events(limit=n_events)

    conformance: list = []

    def one_run(run_telemetry=None, run_monitor=None) -> dict[str, object]:
        run_tel = coalesce(run_telemetry)
        service = SessionService(
            topology, table_size=DEMO_TABLE_SIZE,
            frequency_hz=DEMO_FREQUENCY_HZ, name="replay-demo",
            seed=seed, record_events=False, record_timeline=True,
            telemetry=run_telemetry)
        service.run(events)
        timeline = service.timeline(horizon_slots=n_slots)
        traffic = replay_traffic(timeline)
        flit = verify_timeline(
            timeline, traffic, scenario="replay-demo",
            monitor=run_monitor,
            backend_factory=lambda config: FlitLevelBackend(
                config, telemetry=run_telemetry))
        if flit.conformance is not None:
            conformance.append(flit.conformance)
        with run_tel.phase("best-effort"):
            be = verify_timeline(timeline, traffic,
                                 backend_factory=BestEffortBackend,
                                 scenario="replay-demo")
        return {
            "demo": "replay",
            "seed": seed,
            "n_events": len(events),
            "horizon_slots": n_slots,
            "timeline": timeline.to_record(),
            "verdicts": {"flit": flit.to_record(),
                         "be": be.to_record()},
        }

    with tel.phase("replay"):
        first = one_run(telemetry, monitor)
    with tel.phase("verify"):
        first_json = json.dumps(first, indent=2, sort_keys=True)
        second_json = json.dumps(one_run(), indent=2, sort_keys=True)
    if conformance:
        # Added after both dumps on purpose: the conformance artifact
        # rides along for the CLI without entering the canonical record.
        first["_conformance"] = conformance[0]
    return first, first_json, first_json == second_json
