"""Compiled vectorised epoch executor: one numpy schedule for all backends.

aelite's contention-free TDM schedule is completely regular: every flit's
injection slot and per-hop link traversal is decidable at configuration
time from the slot tables alone.  The per-flit interpreter in
:mod:`repro.simulation.flitsim` re-derives that regularity slot by slot
in Python; this module compiles it away.

The compiled representation has three layers:

* :class:`PatternTable` — one traffic pattern's arrival stream as flat
  ``int64`` arrays (cycle, words, message id, ready slot, flits per
  message, running flit count).  Tables are compiled once per pattern
  object at the full run horizon and *prefix-sliced* per channel
  incarnation, so a timeline that restarts a channel hundreds of times
  pays for its arrival arithmetic once.
* the **interval recurrence** (:func:`_run_interval`) — a channel's
  behaviour over one active span ``[start, end)``.  Contention-freedom
  makes each channel independent, so a whole incarnation (spanning any
  number of epoch boundaries that do not touch it) is solved in a dozen
  array operations: with sorted reserved slots ``s`` (``m`` of them in a
  table of ``T``), the index function ``A(x) = (x // T) * m +
  searchsorted(s, x mod T)`` counts reserved slots before absolute slot
  ``x`` without materialising the schedule, and the FIFO service start
  of message ``i`` follows the Lindley-style recurrence ``k = F +
  cummax(pos - F)`` where ``F`` is the running flit count and ``pos``
  the first reserved slot index at or after the message's ready slot.
* **lazy materialisation** — :class:`CompiledStats` and
  :class:`CompiledTraceRecorder` are drop-in
  :class:`~repro.simulation.monitors.StatsCollector` /
  :class:`~repro.simulation.monitors.TraceRecorder` subclasses that hold
  the interval arrays and only expand them into per-flit
  :class:`~repro.simulation.monitors.InjectionRecord` /
  :class:`~repro.simulation.monitors.DeliveryRecord` objects (or trace
  tuples) when a monitor, ``verify_timeline`` or a campaign serialiser
  actually asks.  Aggregates that do not need records — message counts,
  latency populations, the use-case service-latency check — are computed
  directly from the arrays.

Everything is exact integer arithmetic on the same quantities the
per-flit path computes, so the materialised records are *equal* —
field for field — to the reference implementation's, which is the
correctness oracle the property tests and both tier-2 benchmarks
enforce.

The per-epoch link-contention check is hoisted here too: instead of the
per-flit occupancy scan, the compiled path asserts reservation-level
disjointness of every epoch's active set once per transition (strictly
stronger: it flags overlapping reservations even when no flit happens
to collide).

The best-effort baseline shares :func:`pattern_slice` for its timeline
arrival expansion, and the cycle-accurate model consumes the flat
:meth:`~repro.core.slot_table.SlotTable.owner_row` view of the same
slot tables — one schedule representation across all three backends.

numpy is optional: :func:`numpy_available` gates every entry point and
the flit simulator falls back to the per-flit reference path when it is
missing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - CI images bundle numpy
    _np = None

from repro.core.exceptions import SimulationError
from repro.simulation.monitors import (DeliveryRecord, InjectionRecord,
                                       StatsCollector, TraceRecorder)
from repro.simulation.traffic import (BernoulliMessages, ConstantBitRate,
                                      PeriodicBurst, Replay, Saturating,
                                      TrafficPattern)

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.core.allocation import ChannelAllocation
    from repro.core.timeline import ReconfigurationTimeline
    from repro.core.words import WordFormat
    from repro.simulation.flitsim import FlitLevelSimulator, FlitSimResult

__all__ = ["numpy_available", "PatternTable", "compile_pattern",
           "pattern_slice", "CompiledStats", "CompiledTraceRecorder",
           "execute_static", "execute_timeline"]

#: Patterns whose ``events(h)`` is a prefix of ``events(H)`` for h <= H,
#: so one full-horizon table serves every incarnation by slicing.
_PREFIX_STABLE = (ConstantBitRate, PeriodicBurst, BernoulliMessages,
                  Replay, Saturating)


def numpy_available() -> bool:
    """True when numpy imported, i.e. the compiled executor can run."""
    return _np is not None


class PatternTable:
    """One traffic pattern's arrival stream as flat ``int64`` arrays.

    All arrays are parallel and in event order.  ``ready`` is the
    arrival slot *relative to the channel's start* (``ceil(cycle /
    flit_size)``); ``ready_running`` its running maximum (the admission
    order of the per-flit reference is FIFO in event order, so a later
    event can never be served before an earlier one).  ``flits`` is the
    flit count of each message (``max(1, ceil(words / payload))`` —
    a zero-word message still costs one header-only flit, exactly like
    the reference) and ``flits_before`` its exclusive running sum.
    """

    __slots__ = ("cycles", "words", "mids", "ready", "ready_running",
                 "flits", "flits_before", "horizon_cycles")

    def __init__(self, cycles, words, mids, horizon_cycles: int,
                 flit_size: int, payload_per_flit: int):
        self.cycles = cycles
        self.words = words
        self.mids = mids
        self.horizon_cycles = horizon_cycles
        self.ready = -(-cycles // flit_size)
        if cycles.size:
            self.ready_running = _np.maximum.accumulate(self.ready)
        else:
            self.ready_running = self.ready
        self.flits = _np.maximum(-(-words // payload_per_flit), 1)
        running = _np.cumsum(self.flits)
        self.flits_before = running - self.flits

    def count_until(self, horizon_cycles: int) -> int:
        """Number of events with ``cycle < horizon_cycles``."""
        return int(_np.searchsorted(self.cycles, horizon_cycles,
                                    side="left"))


def compile_pattern(pattern: TrafficPattern, horizon_cycles: int,
                    fmt: "WordFormat") -> PatternTable:
    """Compile one pattern's events before ``horizon_cycles`` to arrays.

    :class:`~repro.simulation.traffic.ConstantBitRate`,
    :class:`~repro.simulation.traffic.PeriodicBurst` and
    :class:`~repro.simulation.traffic.Saturating` are expanded directly
    in numpy (bit-identical to their scalar ``events()``: the CBR floor
    is the same IEEE-754 multiply-and-floor); every other pattern goes
    through its ``events()`` list once.
    """
    np = _np
    flit_size = fmt.flit_size
    if isinstance(pattern, ConstantBitRate) and \
            horizon_cycles > pattern.offset_cycles:
        interval = pattern.interval_cycles
        offset = pattern.offset_cycles
        n = int((horizon_cycles - offset) / interval) + 2
        while True:
            cycles = offset + np.floor(
                np.arange(n, dtype=np.float64) * interval
            ).astype(np.int64)
            if cycles[-1] >= horizon_cycles:
                break
            n *= 2
        keep = int(np.searchsorted(cycles, horizon_cycles, side="left"))
        cycles = cycles[:keep]
        words = np.full(keep, pattern.message_words, dtype=np.int64)
        mids = np.arange(keep, dtype=np.int64)
    elif isinstance(pattern, PeriodicBurst) and \
            horizon_cycles > pattern.offset_cycles:
        n_bursts = -(-(horizon_cycles - pattern.offset_cycles) //
                     pattern.period_cycles)
        starts = pattern.offset_cycles + \
            np.arange(n_bursts, dtype=np.int64) * pattern.period_cycles
        cycles = np.repeat(starts, pattern.burst_messages)
        words = np.full(cycles.size, pattern.message_words,
                        dtype=np.int64)
        mids = np.arange(cycles.size, dtype=np.int64)
    elif isinstance(pattern, Saturating) and horizon_cycles > 0:
        cycles = np.arange(0, horizon_cycles, pattern.flit_size,
                           dtype=np.int64)
        words = np.full(cycles.size, pattern.message_words,
                        dtype=np.int64)
        mids = np.arange(cycles.size, dtype=np.int64)
    else:
        events = pattern.events(horizon_cycles) if horizon_cycles > 0 \
            else []
        n = len(events)
        cycles = np.fromiter((e.cycle for e in events), np.int64, n)
        words = np.fromiter((e.words for e in events), np.int64, n)
        mids = np.fromiter((e.message_id for e in events), np.int64, n)
    return PatternTable(cycles, words, mids, horizon_cycles, flit_size,
                        fmt.payload_words_per_flit)


def pattern_slice(cache: dict, pattern: TrafficPattern,
                  full_horizon_cycles: int, wanted_horizon_cycles: int,
                  fmt: "WordFormat",
                  stats: dict | None = None) -> tuple[PatternTable, int]:
    """A pattern's table plus its event count before a wanted horizon.

    Prefix-stable patterns are compiled once at the full run horizon and
    cached by object identity (the cache entry pins the pattern object
    so ids cannot be recycled); other patterns are compiled exactly at
    the wanted horizon, mirroring the reference's per-incarnation
    ``events()`` call.

    ``stats``, when given, tallies ``pattern_compiles`` (full
    :func:`compile_pattern` runs) vs. ``pattern_slices`` (cache hits
    answered by a binary-search prefix slice).
    """
    if isinstance(pattern, _PREFIX_STABLE):
        key = id(pattern)
        entry = cache.get(key)
        if entry is None or entry[1].horizon_cycles < full_horizon_cycles:
            entry = (pattern,
                     compile_pattern(pattern, full_horizon_cycles, fmt))
            cache[key] = entry
            if stats is not None:
                stats["pattern_compiles"] = \
                    stats.get("pattern_compiles", 0) + 1
        elif stats is not None:
            stats["pattern_slices"] = stats.get("pattern_slices", 0) + 1
        table = entry[1]
        return table, table.count_until(wanted_horizon_cycles)
    if stats is not None:
        stats["pattern_compiles"] = stats.get("pattern_compiles", 0) + 1
    table = compile_pattern(pattern, wanted_horizon_cycles, fmt)
    return table, table.cycles.size


class _IntervalRun:
    """Solved recurrence of one channel incarnation over ``[start, end)``.

    Holds the per-message arrays (``k`` service-start indices, ``actual``
    flits injected before the interval end, ``completed`` mask) plus the
    slot geometry needed to expand them lazily into absolute slots,
    records and trace tuples.
    """

    __slots__ = ("channel", "table", "count", "start", "s", "m",
                 "table_size", "base", "k", "actual", "completed",
                 "n_flits", "n_deliveries", "traversal_slots",
                 "flit_size", "period_ps", "bytes_per_word",
                 "_last_slots")

    def __init__(self):
        self._last_slots = None

    # -- lazy expansions -------------------------------------------------------

    def _slots_of(self, indices):
        """Absolute slots of reserved-slot indices (vectorised)."""
        q, j = _np.divmod(indices, self.m)
        return q * self.table_size + self.s[j]

    def last_slots(self):
        """Absolute slot of the final flit of each completed message."""
        if self._last_slots is None:
            last = (self.k + self.table.flits[:self.count])[
                self.completed] - 1
            self._last_slots = self._slots_of(self.base + last)
        return self._last_slots

    def trace_events(self) -> list[tuple[int, int, int]]:
        """``(message_id, injection_slot, delivery_cycle)`` tuples."""
        last = self.last_slots()
        delivered = (last + self.traversal_slots) * self.flit_size
        mids = self.table.mids[:self.count][self.completed]
        return list(zip(mids.tolist(), last.tolist(),
                        delivered.tolist()))

    def latencies_ns(self) -> list[float]:
        """Delivery latencies, identical floats to the record path."""
        last = self.last_slots()
        delivered = (last + self.traversal_slots) * self.flit_size
        created = self.start * self.flit_size + \
            self.table.cycles[:self.count][self.completed]
        return (((delivered - created) * self.period_ps) /
                1000.0).tolist()

    def append_records(self, sink) -> None:
        """Expand into per-flit records on a ``ChannelStats`` sink."""
        np = _np
        flit_size = self.flit_size
        period_ps = self.period_ps
        channel = self.channel
        counts = self.actual
        message = np.repeat(np.arange(self.count), counts)
        first = np.cumsum(counts) - counts
        offsets = np.arange(self.n_flits) - np.repeat(first, counts)
        slots = self._slots_of(self.base + self.k[message] + offsets)
        cycles = slots * flit_size
        mids = self.table.mids[:self.count][message]
        injections = sink.injections
        sequence = 0  # one run is one incarnation: sequences restart
        for mid, slot, cycle in zip(mids.tolist(), slots.tolist(),
                                    cycles.tolist()):
            injections.append(InjectionRecord(
                channel=channel, message_id=mid, sequence=sequence,
                slot_index=slot, cycle=cycle,
                time_ps=cycle * period_ps))
            sequence += 1
        last = self.last_slots()
        delivered = (last + self.traversal_slots) * flit_size
        mask = self.completed
        dmids = self.table.mids[:self.count][mask]
        created = self.start * flit_size + \
            self.table.cycles[:self.count][mask]
        words = self.table.words[:self.count][mask]
        deliveries = sink.deliveries
        bytes_per_word = self.bytes_per_word
        for mid, created_cycle, delivered_cycle, message_words in zip(
                dmids.tolist(), created.tolist(), delivered.tolist(),
                words.tolist()):
            deliveries.append(DeliveryRecord(
                channel=channel, message_id=mid,
                created_cycle=created_cycle,
                created_time_ps=created_cycle * period_ps,
                delivered_cycle=delivered_cycle,
                delivered_time_ps=delivered_cycle * period_ps,
                payload_bytes=message_words * bytes_per_word))

    def service_latencies_ns(self) -> list[float] | None:
        """Vectorised service latencies, or ``None`` when the reference
        record walk is needed (non-monotone message ids)."""
        np = _np
        mids = self.table.mids[:self.count]
        if mids.size > 1 and not bool((np.diff(mids) > 0).all()):
            return None
        if not self.n_deliveries:
            return []
        period_ps = self.period_ps
        flit_size = self.flit_size
        last = self.last_slots()
        injected_ps = last * flit_size * period_ps
        delivered_ps = (last + self.traversal_slots) * flit_size * \
            period_ps
        created_ps = (self.start * flit_size +
                      self.table.cycles[:self.count][self.completed]) * \
            period_ps
        previous = np.empty_like(injected_ps)
        previous[0] = -1
        previous[1:] = injected_ps[:-1]
        ready = np.maximum(created_ps, previous)
        return ((delivered_ps - ready) / 1000.0).tolist()


def _run_interval(channel: str, table: PatternTable, count: int,
                  start: int, end: int, alloc: "ChannelAllocation",
                  table_size: int, flit_size: int, period_ps: int,
                  bytes_per_word: int) -> _IntervalRun | None:
    """Solve one incarnation's recurrence; ``None`` when nothing flew."""
    if count == 0:
        return None
    np = _np
    s = np.asarray(alloc.slots, dtype=np.int64)
    m = s.size
    base = (start // table_size) * m + \
        int(np.searchsorted(s, start % table_size))
    total = (end // table_size) * m + \
        int(np.searchsorted(s, end % table_size)) - base
    if total <= 0:
        return None
    ready = table.ready_running[:count] + start
    quotient, remainder = np.divmod(ready, table_size)
    pos = quotient * m + np.searchsorted(s, remainder) - base
    flits_before = table.flits_before[:count]
    flits = table.flits[:count]
    k = flits_before + np.maximum.accumulate(pos - flits_before)
    actual = np.clip(total - k, 0, flits)
    n_flits = int(actual.sum())
    if n_flits == 0:
        return None
    run = _IntervalRun()
    run.channel = channel
    run.table = table
    run.count = count
    run.start = start
    run.s = s
    run.m = m
    run.table_size = table_size
    run.base = base
    run.k = k
    run.actual = actual
    run.completed = actual == flits
    run.n_flits = n_flits
    run.n_deliveries = int(np.count_nonzero(run.completed))
    run.traversal_slots = alloc.path.traversal_slots
    run.flit_size = flit_size
    run.period_ps = period_ps
    run.bytes_per_word = bytes_per_word
    return run


class CompiledStats(StatsCollector):
    """Record log backed by interval arrays, materialised on demand.

    Drop-in :class:`~repro.simulation.monitors.StatsCollector`: any
    record access (``channel``, ``sink``, ``all_deliveries``) expands
    the touched channel's arrays into the usual record objects, equal
    field-for-field to the per-flit reference's.  Aggregate queries
    (:meth:`delivery_count`, :meth:`all_latencies_ns`,
    :meth:`service_latencies_ns`) stay on the arrays.
    """

    def __init__(self):
        super().__init__()
        self._runs: dict[str, list[_IntervalRun]] = {}
        self._materialised: set[str] = set()

    def _add_run(self, run: _IntervalRun) -> None:
        self._runs.setdefault(run.channel, []).append(run)

    def _ensure(self, name: str) -> None:
        runs = self._runs.get(name)
        if runs is None or name in self._materialised:
            return
        self._materialised.add(name)
        sink = super().sink(name)
        for run in runs:
            run.append_records(sink)

    def channel(self, name: str):
        """Stats of one channel, materialising its records first."""
        self._ensure(name)
        return super().channel(name)

    def sink(self, name: str):
        """Registered stats of one channel (see the base class)."""
        self._ensure(name)
        return super().sink(name)

    @property
    def channels(self) -> tuple[str, ...]:
        """All channels with at least one record, sorted."""
        names = set(self._runs)
        names.update(n for n, stats in self._by_channel.items()
                     if stats.injections or stats.deliveries)
        return tuple(sorted(names))

    def all_deliveries(self):
        """Every delivery record across channels (stable order)."""
        for name in tuple(self._runs):
            self._ensure(name)
        return super().all_deliveries()

    def delivery_count(self) -> int:
        """Total messages delivered, without materialising records."""
        total = sum(run.n_deliveries
                    for runs in self._runs.values() for run in runs)
        total += sum(len(stats.deliveries)
                     for name, stats in self._by_channel.items()
                     if name not in self._runs)
        return total

    def all_latencies_ns(self) -> list[float]:
        """Every delivery latency, in :meth:`all_deliveries` order."""
        out: list[float] = []
        for name in self.channels:
            runs = self._runs.get(name)
            if runs is not None:
                for run in runs:
                    out.extend(run.latencies_ns())
            else:
                out.extend(d.latency_ns
                           for d in self._by_channel[name].deliveries)
        return out

    def service_latencies_ns(self, channel: str) -> list[float] | None:
        """Array fast path for :func:`repro.usecase.runner.
        service_latencies_ns`; ``None`` defers to the record walk."""
        runs = self._runs.get(channel)
        if runs is None:
            return None if channel in self._by_channel else []
        if len(runs) != 1:
            return None
        return runs[0].service_latencies_ns()


class CompiledTraceRecorder(TraceRecorder):
    """Composability trace backed by interval arrays.

    Traces materialise per channel on first access and are byte-equal
    to the reference recorder's tuples, so
    :meth:`~repro.simulation.monitors.TraceRecorder.equal_on` and the
    dynamic composability check work unchanged.
    """

    def __init__(self):
        super().__init__()
        self._runs: dict[str, list[_IntervalRun]] = {}
        self._materialised: set[str] = set()

    def _add_run(self, run: _IntervalRun) -> None:
        self._runs.setdefault(run.channel, []).append(run)

    def _ensure(self, name: str) -> None:
        runs = self._runs.get(name)
        if runs is None or name in self._materialised:
            return
        self._materialised.add(name)
        sink = self._events[name]
        for run in runs:
            sink.extend(run.trace_events())

    def trace(self, channel: str) -> tuple[tuple[int, int, int], ...]:
        """The immutable trace of one channel."""
        self._ensure(channel)
        return super().trace(channel)

    def channel_sink(self, channel: str) -> list[tuple[int, int, int]]:
        """The mutable event list of one channel (see the base class)."""
        self._ensure(channel)
        return super().channel_sink(channel)

    def channels(self) -> tuple[str, ...]:
        """Channels with at least one event, sorted."""
        names = set(self._runs)
        names.update(n for n, events in self._events.items() if events)
        return tuple(sorted(names))


# -- epoch-level contention check ------------------------------------------------


def _occupy(occupied: dict, name: str, alloc: "ChannelAllocation",
            table_size: int, epoch_slot: int) -> None:
    """Claim a channel's link slots; raise on reservation overlap."""
    for key, slots in alloc.link_slots(table_size).items():
        for slot in slots:
            holder = occupied.get((key, slot))
            if holder is not None and holder != name:
                raise SimulationError(
                    f"link {key} carries two flits in slot {slot} of "
                    f"the epoch starting at slot {epoch_slot}: "
                    f"{holder!r} and {name!r}")
            occupied[(key, slot)] = name


def _release(occupied: dict, alloc: "ChannelAllocation",
             table_size: int) -> None:
    for key, slots in alloc.link_slots(table_size).items():
        for slot in slots:
            occupied.pop((key, slot), None)


# -- executors ------------------------------------------------------------------


#: Bucket edges for the interval-run batch-size histogram (messages
#: solved per interval recurrence).
_BATCH_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096)


def _finish_executor_stats(tel, exec_stats: dict, n_slots: int,
                           changes: tuple) -> None:
    """Fold one compiled run's work counters into the telemetry hub."""
    if not tel.enabled:
        return
    tel.counter("executor.dispatch", path="compiled").inc()
    tel.counter("executor.epochs").inc(exec_stats.get("epochs", 1))
    tel.counter("executor.pattern_table", outcome="compile").inc(
        exec_stats.get("pattern_compiles", 0))
    tel.counter("executor.pattern_table", outcome="slice").inc(
        exec_stats.get("pattern_slices", 0))
    tel.counter("executor.interval_runs").inc(
        exec_stats.get("interval_runs", 0))
    from repro.simulation.flitsim import record_epoch_spans
    record_epoch_spans(tel, n_slots, changes)


def execute_static(sim: "FlitLevelSimulator",
                   n_slots: int) -> "FlitSimResult":
    """Run a static configuration through the compiled executor."""
    from repro.simulation.flitsim import FlitSimResult

    fmt = sim.fmt
    flit_size = fmt.flit_size
    table_size = sim.table_size
    period_ps = round(1e12 / sim.frequency_hz)
    channels = sorted(sim.config.allocation.channels.items())
    if sim.check_contention:
        occupied: dict = {}
        for name, alloc in channels:
            _occupy(occupied, name, alloc, table_size, 0)
    stats = CompiledStats()
    trace = CompiledTraceRecorder()
    flits = {name: 0 for name, _ in channels}
    horizon_cycles = n_slots * flit_size
    cache: dict = {}
    tel = sim.telemetry
    batch_hist = tel.histogram("executor.interval_batch_messages",
                               bounds=_BATCH_BUCKETS)
    exec_stats: dict = {"epochs": 1}
    for name, alloc in channels:
        pattern = sim._patterns.get(name)
        if pattern is None:
            continue
        table, count = pattern_slice(cache, pattern, horizon_cycles,
                                     horizon_cycles, fmt, exec_stats)
        run = _run_interval(name, table, count, 0, n_slots, alloc,
                            table_size, flit_size, period_ps,
                            fmt.bytes_per_word)
        if run is None:
            continue
        exec_stats["interval_runs"] = \
            exec_stats.get("interval_runs", 0) + 1
        batch_hist.observe(run.count)
        stats._add_run(run)
        if run.n_deliveries:
            trace._add_run(run)
        flits[name] += run.n_flits
    _finish_executor_stats(tel, exec_stats, n_slots, ())
    return FlitSimResult(
        stats=stats, trace=trace, simulated_slots=n_slots,
        frequency_hz=sim.frequency_hz, fmt=fmt,
        stalled_slots_by_channel={name: 0 for name in flits},
        flits_by_channel=flits, n_epochs=1, compiled=True,
        executor_stats=exec_stats)


def execute_timeline(sim: "FlitLevelSimulator",
                     timeline: "ReconfigurationTimeline", n_slots: int,
                     patterns: Mapping[str, TrafficPattern]
                     ) -> "FlitSimResult":
    """Execute a reconfiguration timeline through the compiled executor.

    Contention-freedom makes channels independent, so each incarnation
    (one ``(start, stop)`` span from the change plan) is solved as one
    interval recurrence regardless of how many epoch boundaries other
    applications' churn creates inside it — the logical extreme of the
    per-flit path's incremental recompilation, where a surviving
    channel's schedule rows cross boundaries untouched.
    """
    from repro.simulation.flitsim import FlitSimResult

    fmt = sim.fmt
    flit_size = fmt.flit_size
    table_size = sim.table_size
    period_ps = round(1e12 / sim.frequency_hz)
    bytes_per_word = fmt.bytes_per_word
    check = sim.check_contention
    occupied: dict = {}
    initial, changes = timeline.change_plan(until=n_slots)
    stats = CompiledStats()
    trace = CompiledTraceRecorder()
    flits: dict[str, int] = {}
    cache: dict = {}
    active: dict[str, tuple[int, "ChannelAllocation"]] = {}
    full_horizon_cycles = n_slots * flit_size
    tel = sim.telemetry
    batch_hist = tel.histogram("executor.interval_batch_messages",
                               bounds=_BATCH_BUCKETS)
    exec_stats: dict = {"epochs": len(changes) + 1}

    def open_channel(alloc: "ChannelAllocation", slot: int) -> None:
        name = alloc.spec.name
        if name in active:
            raise SimulationError(
                f"timeline starts channel {name!r} twice at slot {slot}")
        active[name] = (slot, alloc)
        flits.setdefault(name, 0)
        if check:
            _occupy(occupied, name, alloc, table_size, slot)

    def close_channel(name: str, end: int) -> None:
        start, alloc = active.pop(name)
        if check:
            _release(occupied, alloc, table_size)
        pattern = patterns.get(name)
        if pattern is None:
            return
        table, count = pattern_slice(
            cache, pattern, full_horizon_cycles,
            (n_slots - start) * flit_size, fmt, exec_stats)
        run = _run_interval(name, table, count, start, end, alloc,
                            table_size, flit_size, period_ps,
                            bytes_per_word)
        if run is None:
            return
        exec_stats["interval_runs"] = \
            exec_stats.get("interval_runs", 0) + 1
        batch_hist.observe(run.count)
        stats._add_run(run)
        if run.n_deliveries:
            trace._add_run(run)
        flits[name] += run.n_flits

    for alloc in sorted(initial, key=lambda ca: ca.spec.name):
        open_channel(alloc, 0)
    for slot, stops, starts in changes:
        for name in stops:
            if name not in active:
                raise SimulationError(
                    f"timeline stops unknown channel {name!r} at slot "
                    f"{slot}")
            close_channel(name, slot)
        for alloc in starts:
            open_channel(alloc, slot)
    for name in list(active):
        close_channel(name, n_slots)
    _finish_executor_stats(tel, exec_stats, n_slots, changes)
    return FlitSimResult(
        stats=stats, trace=trace, simulated_slots=n_slots,
        frequency_hz=sim.frequency_hz, fmt=fmt,
        stalled_slots_by_channel={name: 0 for name in flits},
        flits_by_channel=flits, n_epochs=len(changes) + 1,
        compiled=True, executor_stats=exec_stats)
