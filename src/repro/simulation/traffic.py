"""Traffic patterns and their adapters for both simulators.

A :class:`TrafficPattern` describes *when* messages become available at a
channel's source NI and *how large* they are, in source-NI cycles.  The
same pattern object drives the fast flit-level simulator and (via
:class:`GeneratorComponent`) the detailed word-level simulator, so results
are directly comparable.

All randomness is drawn from per-instance seeded generators: two runs with
equal parameters produce identical event streams.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat
from repro.ni.packetizer import TxMessage

__all__ = ["MessageEvent", "TrafficPattern", "ConstantBitRate",
           "PeriodicBurst", "BernoulliMessages", "Replay", "Saturating",
           "GeneratorComponent"]


@dataclass(frozen=True)
class MessageEvent:
    """One message becoming available for injection."""

    cycle: int
    words: int
    message_id: int


class TrafficPattern(ABC):
    """Deterministic message-arrival schedule for one channel."""

    @abstractmethod
    def events(self, horizon_cycles: int) -> list[MessageEvent]:
        """All events with ``cycle < horizon_cycles``, in cycle order."""

    def offered_bytes(self, horizon_cycles: int, fmt: WordFormat) -> int:
        """Total payload offered before the horizon."""
        return sum(e.words for e in self.events(horizon_cycles)) * \
            fmt.bytes_per_word


class ConstantBitRate(TrafficPattern):
    """Fixed-size messages at a fixed average interval.

    ``interval_cycles`` may be fractional; arrival cycles are the floor of
    the exact schedule, which keeps the long-run rate exact.
    """

    def __init__(self, message_words: int, interval_cycles: float, *,
                 offset_cycles: int = 0):
        if message_words < 1:
            raise ConfigurationError("message_words must be >= 1")
        if interval_cycles <= 0:
            raise ConfigurationError("interval_cycles must be positive")
        if offset_cycles < 0:
            raise ConfigurationError("offset_cycles must be >= 0")
        self.message_words = message_words
        self.interval_cycles = interval_cycles
        self.offset_cycles = offset_cycles

    @staticmethod
    def from_rate(throughput_bytes_per_s: float, frequency_hz: float,
                  fmt: WordFormat, *, message_words: int | None = None,
                  offset_cycles: int = 0) -> "ConstantBitRate":
        """Build a CBR pattern delivering a given payload rate.

        The default message size is one flit's worth of payload, matching
        the allocator's conservative accounting.
        """
        if throughput_bytes_per_s <= 0:
            raise ConfigurationError("throughput must be positive")
        words = message_words or fmt.payload_words_per_flit
        bytes_per_message = words * fmt.bytes_per_word
        interval = frequency_hz * bytes_per_message / throughput_bytes_per_s
        return ConstantBitRate(words, interval, offset_cycles=offset_cycles)

    def events(self, horizon_cycles: int) -> list[MessageEvent]:
        """Arrivals at ``offset + floor(k * interval)``."""
        out: list[MessageEvent] = []
        k = 0
        while True:
            cycle = self.offset_cycles + math.floor(k * self.interval_cycles)
            if cycle >= horizon_cycles:
                break
            out.append(MessageEvent(cycle, self.message_words, k))
            k += 1
        return out


class PeriodicBurst(TrafficPattern):
    """Bursts of back-to-back messages at a fixed period."""

    def __init__(self, burst_messages: int, message_words: int,
                 period_cycles: int, *, offset_cycles: int = 0):
        if burst_messages < 1 or message_words < 1 or period_cycles < 1:
            raise ConfigurationError(
                "burst_messages, message_words and period_cycles must be >= 1")
        self.burst_messages = burst_messages
        self.message_words = message_words
        self.period_cycles = period_cycles
        self.offset_cycles = offset_cycles

    def events(self, horizon_cycles: int) -> list[MessageEvent]:
        """All burst arrivals; messages of one burst share their cycle."""
        out: list[MessageEvent] = []
        message_id = 0
        burst_start = self.offset_cycles
        while burst_start < horizon_cycles:
            for _ in range(self.burst_messages):
                out.append(MessageEvent(burst_start, self.message_words,
                                        message_id))
                message_id += 1
            burst_start += self.period_cycles
        return out


class BernoulliMessages(TrafficPattern):
    """One message with probability ``p`` at every slot boundary."""

    def __init__(self, probability: float, message_words: int,
                 flit_size: int, *, seed: int = 0):
        if not 0 <= probability <= 1:
            raise ConfigurationError("probability must be in [0, 1]")
        if message_words < 1 or flit_size < 1:
            raise ConfigurationError(
                "message_words and flit_size must be >= 1")
        self.probability = probability
        self.message_words = message_words
        self.flit_size = flit_size
        self.seed = seed

    def events(self, horizon_cycles: int) -> list[MessageEvent]:
        """Seeded Bernoulli draws, one per slot."""
        rng = random.Random(self.seed)
        out: list[MessageEvent] = []
        message_id = 0
        for slot_start in range(0, horizon_cycles, self.flit_size):
            if rng.random() < self.probability:
                out.append(MessageEvent(slot_start, self.message_words,
                                        message_id))
                message_id += 1
        return out


class Replay(TrafficPattern):
    """An explicit, caller-supplied event list."""

    def __init__(self, events: list[MessageEvent]):
        ordered = sorted(events, key=lambda e: (e.cycle, e.message_id))
        if ordered != list(events):
            raise ConfigurationError(
                "replay events must be sorted by (cycle, message_id)")
        self._events = list(events)

    def events(self, horizon_cycles: int) -> list[MessageEvent]:
        """Events before the horizon."""
        return [e for e in self._events if e.cycle < horizon_cycles]


class Saturating(TrafficPattern):
    """A source that always has one message ready per slot.

    Used for saturation measurements: the channel's delivered rate then
    equals its guaranteed (reserved) throughput exactly.
    """

    def __init__(self, message_words: int, flit_size: int):
        if message_words < 1 or flit_size < 1:
            raise ConfigurationError(
                "message_words and flit_size must be >= 1")
        self.message_words = message_words
        self.flit_size = flit_size

    def events(self, horizon_cycles: int) -> list[MessageEvent]:
        """One message at every slot boundary."""
        return [MessageEvent(c, self.message_words, i)
                for i, c in enumerate(
                    range(0, horizon_cycles, self.flit_size))]


class GeneratorComponent:
    """``Clocked`` adapter feeding a pattern into a detailed-model NI.

    Must be registered with the engine *before* its NI so that a message
    arriving exactly at a slot boundary is visible to that slot's
    injection decision (both run in the compute phase of the same edge).
    """

    def __init__(self, ni, channel: str, pattern: TrafficPattern,
                 horizon_cycles: int, clock):
        self.ni = ni
        self.channel = channel
        self._events = deque(pattern.events(horizon_cycles))
        self._clock = clock

    def compute(self, cycle: int, time_ps: int) -> None:
        """Enqueue all messages that become available this cycle."""
        while self._events and self._events[0].cycle <= cycle:
            event = self._events.popleft()
            self.ni.enqueue_message(self.channel, TxMessage(
                message_id=event.message_id,
                words=deque(range(event.words)),
                created_cycle=event.cycle,
                created_time_ps=self._clock.edge_time(event.cycle)))

    def commit(self, cycle: int, time_ps: int) -> None:
        """Generators hold no clocked state."""
