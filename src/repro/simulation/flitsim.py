"""Fast flit-level TDM simulator.

aelite is *flit-synchronous*: globally, the network behaves as a
synchronous machine whose unit of time is the flit cycle (one TDM slot).
This simulator exploits that property for speed: it advances slot by slot,
injecting at most one flit per NI per slot according to the slot tables,
and delivering each flit a fixed, path-determined number of slots later.
That fixed delivery offset is not an approximation — it is the defining
property of contention-free routing, which the detailed word-level
simulator (:mod:`repro.simulation.cyclesim`) independently verifies on the
same configurations.

What the flit simulator adds over pure analysis:

* actual queueing: messages wait for their channel's next reserved slot,
  so measured latency reflects arrival phasing, burstiness and head-of-line
  effects within a channel;
* end-to-end credit flow control (optional): oversubscribed channels slow
  down via back-pressure, without ever disturbing other channels;
* per-flit traces for the composability comparison;
* an optional paranoid mode asserting that no two flits ever occupy the
  same link in the same slot (the invariant the allocation guarantees).

Payload accounting is conservative (header word in every flit), matching
the allocator; packet continuation only improves real throughput.

The hot loop is organised around *flat injection-slot schedules*: the
slot tables are compiled once into a per-table-slot list of channel
runtime states and the per-channel arrival streams into flat arrays of
precomputed ready-slots, so a simulated slot touches exactly the
channels that own it instead of re-scanning every NI's table.

Execution is *epoch-based*: a run is a sequence of spans with a constant
channel set, separated by reconfiguration boundaries.  A static
:meth:`~FlitLevelSimulator.run` is the one-epoch special case;
:meth:`~FlitLevelSimulator.run_timeline` executes a
:class:`~repro.core.timeline.ReconfigurationTimeline` of live start/stop
transitions.  At each boundary only the channels the transition touches
have their injection-slot schedule entries rebuilt (*incremental
recompilation*); every surviving channel's runtime — pending messages,
arrival cursor, credit state, trace sinks — crosses the boundary
untouched, which is exactly the paper's undisrupted-reconfiguration
property at cycle level.

When numpy is importable (and flow control is off), both entry points
dispatch to the *compiled* executor (:mod:`repro.simulation.compiled`),
which solves each channel incarnation's whole schedule as a handful of
array operations and materialises records lazily.  Its output is
record-for-record equal to this module's per-flit loop, which stays as
the reference implementation (and the only path that models credit
back-pressure); the ``compiled`` constructor knob forces either path
explicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.core.allocation import ChannelAllocation
from repro.core.configuration import NocConfiguration
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.words import WordFormat
from repro.simulation.monitors import (DeliveryRecord, InjectionRecord,
                                       StatsCollector, TraceRecorder,
                                       latency_digest)
from repro.simulation.traffic import TrafficPattern
from repro.telemetry.hub import coalesce

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.timeline import ReconfigurationTimeline

__all__ = ["FlitLevelSimulator", "FlitSimResult"]


def record_epoch_spans(tel, n_slots: int, changes: tuple) -> None:
    """Trace one epoch span per constant-channel interval of a run.

    Shared by the per-flit loop and the compiled executor so both paths
    emit identical ``epochs`` tracks (unit: slots) for the same
    timeline.  ``changes`` is the boundary plan from
    :meth:`~repro.core.timeline.ReconfigurationTimeline.change_plan`.
    """
    start = 0
    for index, (boundary, _, _) in enumerate((*changes,
                                              (n_slots, (), ()))):
        end = min(boundary, n_slots)
        if end > start or index == 0:
            tel.span(f"epoch {index}", start, end, track="epochs",
                     unit="slot", slots=end - start)
        if boundary >= n_slots:
            break
        start = boundary


class _ChannelRuntime:
    """Per-channel state of one run, flattened for the hot loop.

    Arrival events are pre-expanded into parallel flat arrays
    (``ev_ready`` / ``ev_cycle`` / ``ev_words`` / ``ev_id``) with a
    cursor, so readiness is a single integer compare per scheduled slot.
    A pending message is a mutable ``[message_id, words_left,
    total_words, created_cycle]`` list.
    """

    __slots__ = ("name", "alloc", "ev_ready", "ev_cycle", "ev_words",
                 "ev_id", "ev_pos", "ev_len", "pending", "credits_words",
                 "flits_sent", "stalled_slots", "traversal_slots",
                 "credit_loop_slots", "contention_keys", "injections",
                 "deliveries", "trace_events")

    def __init__(self, name: str, alloc: ChannelAllocation):
        self.name = name
        self.alloc = alloc
        self.ev_ready: list[int] = []
        self.ev_cycle: list[int] = []
        self.ev_words: list[int] = []
        self.ev_id: list[int] = []
        self.ev_pos = 0
        self.ev_len = 0
        self.pending: deque[list[int]] = deque()
        self.credits_words: int | None = None
        self.flits_sent = 0
        self.stalled_slots = 0
        self.traversal_slots = alloc.path.traversal_slots
        self.credit_loop_slots = 0
        self.contention_keys: tuple[tuple[tuple[str, str], int], ...] = ()
        self.injections: list[InjectionRecord] = []
        self.deliveries: list[DeliveryRecord] = []
        self.trace_events: list[tuple[int, int, int]] | None = None


@dataclass
class FlitSimResult:
    """Everything a flit-level run produced."""

    stats: StatsCollector
    trace: TraceRecorder
    simulated_slots: int
    frequency_hz: float
    fmt: WordFormat
    stalled_slots_by_channel: dict[str, int]
    flits_by_channel: dict[str, int]
    n_epochs: int = 1
    compiled: bool = False
    #: Executor-internal work counters (pattern-table compiles vs.
    #: binary-search slices, interval-run batches, …); surfaced through
    #: ``SimResult.meta["executor_stats"]`` by the flit backend.
    executor_stats: dict = field(default_factory=dict)

    @property
    def simulated_ns(self) -> float:
        """Simulated wall-clock time."""
        return (self.simulated_slots * self.fmt.flit_size /
                self.frequency_hz * 1e9)

    def channel_throughput_bytes_per_s(self, channel: str, *,
                                       warmup_fraction: float = 0.1
                                       ) -> float:
        """Delivered payload rate of one channel after warm-up."""
        total_ps = int(self.simulated_slots * self.fmt.flit_size *
                       1e12 / self.frequency_hz)
        start = int(total_ps * warmup_fraction)
        return self.stats.channel(channel).throughput_bytes_per_s(
            start, total_ps)

    def summary(self) -> str:
        """One-line latency digest for logs and the REPL."""
        return latency_digest("flit", self.stats, self.simulated_slots,
                              "slots", self.frequency_hz)

    def __repr__(self) -> str:
        return f"FlitSimResult({self.summary()})"


class FlitLevelSimulator:
    """Slot-by-slot simulator over a validated configuration."""

    def __init__(self, config: NocConfiguration, *,
                 flow_control: bool = False,
                 rx_buffer_words: int | None = None,
                 check_contention: bool = False,
                 compiled: bool | None = None,
                 telemetry=None):
        self.config = config
        self.telemetry = coalesce(telemetry)
        self.fmt = config.fmt
        self.table_size = config.table_size
        self.frequency_hz = config.frequency_hz
        self.flow_control = flow_control
        self.rx_buffer_words = rx_buffer_words
        self.check_contention = check_contention
        if compiled:
            from repro.simulation.compiled import numpy_available
            if not numpy_available():
                raise ConfigurationError(
                    "compiled=True requires numpy, which is not "
                    "importable")
            if flow_control:
                raise ConfigurationError(
                    "compiled=True cannot model credit flow control; "
                    "use the per-flit path (compiled=False)")
        self.compiled = compiled
        self._patterns: dict[str, TrafficPattern] = {}

    def set_traffic(self, channel: str, pattern: TrafficPattern) -> None:
        """Attach a traffic pattern to one channel."""
        if channel not in self.config.allocation.channels:
            raise ConfigurationError(
                f"channel {channel!r} is not part of the configuration")
        self._patterns[channel] = pattern

    # -- main loop -------------------------------------------------------------

    def run(self, n_slots: int) -> FlitSimResult:
        """Simulate ``n_slots`` flit cycles and return all measurements."""
        if n_slots <= 0:
            raise ConfigurationError(f"n_slots must be positive, got {n_slots}")
        if self._use_compiled(True):
            from repro.simulation import compiled as compiled_exec
            return compiled_exec.execute_static(self, n_slots)
        states = self._build_channel_states(n_slots)
        return self._execute(n_slots, states, (), {}, True)

    def _use_compiled(self, incremental: bool) -> bool:
        """Whether this run goes through the compiled executor.

        ``incremental=False`` always takes the per-flit path: the full
        per-epoch rebuild is the reference the benchmarks measure both
        faster paths against.
        """
        if not incremental:
            return False
        if self.compiled is not None:
            return self.compiled
        if self.flow_control:
            return False
        from repro.simulation.compiled import numpy_available
        return numpy_available()

    def run_timeline(self, timeline: "ReconfigurationTimeline",
                     n_slots: int | None = None, *,
                     traffic: dict[str, TrafficPattern] | None = None,
                     incremental: bool = True) -> FlitSimResult:
        """Execute a reconfiguration timeline epoch by epoch.

        The channel set comes from the timeline's events, not from the
        configuration's allocation; each channel's traffic pattern is
        interpreted relative to its start slot.  ``incremental=True``
        (the default) dispatches to the compiled executor when
        available, else rebuilds only the injection-slot schedule
        entries of channels a transition touches; ``incremental=False``
        recompiles the whole schedule at every boundary — behaviourally
        identical, and kept as the reference the tier-2 benchmark
        measures both faster paths against.
        """
        if timeline.table_size != self.table_size:
            raise ConfigurationError(
                f"timeline table size {timeline.table_size} != "
                f"simulator table size {self.table_size}")
        if timeline.frequency_hz != self.frequency_hz:
            raise ConfigurationError(
                "timeline frequency differs from the configuration's; "
                "TDM schedules cannot be retimed")
        if timeline.fmt != self.fmt:
            raise ConfigurationError(
                "timeline word format differs from the configuration's")
        if n_slots is None:
            n_slots = timeline.horizon_slots
        if not 0 < n_slots <= timeline.horizon_slots:
            raise ConfigurationError(
                f"n_slots must be in (0, {timeline.horizon_slots}], "
                f"got {n_slots}")
        patterns = dict(traffic or {})
        unknown = sorted(set(patterns) - set(timeline.channel_names))
        if unknown:
            raise ConfigurationError(
                f"traffic names channels outside the timeline: {unknown}")
        if self._use_compiled(incremental):
            from repro.simulation import compiled as compiled_exec
            return compiled_exec.execute_timeline(self, timeline, n_slots,
                                                  patterns)
        initial, changes = timeline.change_plan(until=n_slots)
        states = {
            ca.spec.name: self._make_runtime(
                ca.spec.name, ca, patterns.get(ca.spec.name), 0, n_slots)
            for ca in sorted(initial, key=lambda ca: ca.spec.name)}
        return self._execute(n_slots, states, changes, patterns,
                             incremental)

    def _execute(self, n_slots: int, states: dict[str, _ChannelRuntime],
                 changes: tuple, patterns: dict[str, TrafficPattern],
                 incremental: bool) -> FlitSimResult:
        """Run the slot loop over one or more constant-channel epochs."""
        fmt = self.fmt
        flit_size = fmt.flit_size
        payload_per_flit = fmt.payload_words_per_flit
        bytes_per_word = fmt.bytes_per_word
        period_ps = round(1e12 / self.frequency_hz)
        table_size = self.table_size
        check_contention = self.check_contention
        stats = StatsCollector()
        trace = TraceRecorder()
        all_states: list[_ChannelRuntime] = []

        def register(state: _ChannelRuntime) -> None:
            channel_stats = stats.sink(state.name)
            state.injections = channel_stats.injections
            state.deliveries = channel_stats.deliveries
            all_states.append(state)

        for state in states.values():
            register(state)
        schedule = self._compile_schedule(states)

        # (slot, seq, runtime, words): credits return to the exact
        # runtime that spent them, so a channel restarted under a
        # timeline never absorbs its previous incarnation's returns;
        # the sequence number keeps heap ordering off the runtimes.
        credit_returns: list[tuple[int, int, _ChannelRuntime, int]] = []
        credit_seq = 0
        occupancy: dict[tuple[tuple[str, str], int], str] = {}
        injection_record = InjectionRecord
        delivery_record = DeliveryRecord

        span_start = 0
        for boundary, stops, starts in (*changes, (n_slots, (), ())):
            for abs_slot in range(span_start, min(boundary, n_slots)):
                # Release credits that completed their loop.
                while credit_returns and credit_returns[0][0] <= abs_slot:
                    _, _, state, words = heappop(credit_returns)
                    if state.credits_words is not None:
                        state.credits_words += words
                for state in schedule[abs_slot % table_size]:
                    # Move arrivals whose ready slot has passed into the
                    # queue.
                    pos = state.ev_pos
                    if pos < state.ev_len and state.ev_ready[pos] <= abs_slot:
                        pending_append = state.pending.append
                        ev_ready = state.ev_ready
                        while pos < state.ev_len and ev_ready[pos] <= abs_slot:
                            pending_append([state.ev_id[pos],
                                            state.ev_words[pos],
                                            state.ev_words[pos],
                                            state.ev_cycle[pos]])
                            pos += 1
                        state.ev_pos = pos
                    pending = state.pending
                    if not pending:
                        continue
                    message = pending[0]
                    words_left = message[1]
                    payload_words = (words_left
                                     if words_left < payload_per_flit
                                     else payload_per_flit)
                    credits = state.credits_words
                    if credits is not None and credits < payload_words:
                        state.stalled_slots += 1
                        continue
                    if check_contention:
                        self._check_links(state, abs_slot, occupancy)
                    message[1] = words_left - payload_words
                    if credits is not None:
                        state.credits_words = credits - payload_words
                        heappush(credit_returns,
                                 (abs_slot + state.credit_loop_slots,
                                  credit_seq, state, payload_words))
                        credit_seq += 1
                    state.flits_sent += 1
                    cycle = abs_slot * flit_size
                    state.injections.append(injection_record(
                        channel=state.name, message_id=message[0],
                        sequence=state.flits_sent - 1, slot_index=abs_slot,
                        cycle=cycle, time_ps=cycle * period_ps))
                    if message[1] <= 0:
                        pending.popleft()
                        delivered_cycle = (abs_slot +
                                           state.traversal_slots) * \
                            flit_size
                        state.deliveries.append(delivery_record(
                            channel=state.name, message_id=message[0],
                            created_cycle=message[3],
                            created_time_ps=message[3] * period_ps,
                            delivered_cycle=delivered_cycle,
                            delivered_time_ps=delivered_cycle * period_ps,
                            payload_bytes=message[2] * bytes_per_word))
                        trace_events = state.trace_events
                        if trace_events is None:
                            trace_events = trace.channel_sink(state.name)
                            state.trace_events = trace_events
                        trace_events.append((message[0], abs_slot,
                                             delivered_cycle))
            if boundary >= n_slots:
                break
            span_start = boundary
            schedule = self._apply_transition(
                states, schedule, stops, starts, boundary, n_slots,
                patterns, incremental, register)
        stats.prune_empty()
        stalled: dict[str, int] = {}
        flits: dict[str, int] = {}
        for state in all_states:
            stalled[state.name] = stalled.get(state.name, 0) + \
                state.stalled_slots
            flits[state.name] = flits.get(state.name, 0) + \
                state.flits_sent
        n_epochs = len(changes) + 1
        tel = self.telemetry
        if tel.enabled:
            tel.counter("executor.dispatch", path="per-flit").inc()
            tel.counter("executor.epochs").inc(n_epochs)
            record_epoch_spans(tel, n_slots, changes)
        return FlitSimResult(
            stats=stats, trace=trace, simulated_slots=n_slots,
            frequency_hz=self.frequency_hz, fmt=fmt,
            stalled_slots_by_channel=stalled,
            flits_by_channel=flits,
            n_epochs=n_epochs,
            executor_stats={"epochs": n_epochs})

    # -- helpers ---------------------------------------------------------------

    def _build_channel_states(self, n_slots: int
                              ) -> dict[str, _ChannelRuntime]:
        return {
            name: self._make_runtime(name, alloc,
                                     self._patterns.get(name), 0, n_slots)
            for name, alloc in
            sorted(self.config.allocation.channels.items())}

    def _make_runtime(self, name: str, alloc: ChannelAllocation,
                      pattern: TrafficPattern | None, start_slot: int,
                      n_slots: int) -> _ChannelRuntime:
        """Fresh per-channel state for a channel starting at a slot.

        Traffic patterns are relative to the channel's start: an event
        at pattern cycle ``c`` becomes ready ``c`` cycles after the
        channel (re)starts.
        """
        fmt = self.fmt
        flit_size = fmt.flit_size
        state = _ChannelRuntime(name, alloc)
        if pattern is not None:
            base_cycle = start_slot * flit_size
            events = pattern.events((n_slots - start_slot) * flit_size)
            # ceil(cycle / flit_size): first slot whose boundary has
            # passed the arrival cycle.
            state.ev_ready = [start_slot + -(-e.cycle // flit_size)
                              for e in events]
            state.ev_cycle = [base_cycle + e.cycle for e in events]
            state.ev_words = [e.words for e in events]
            state.ev_id = [e.message_id for e in events]
            state.ev_len = len(events)
        if self.flow_control:
            state.credits_words = self.rx_buffer_words or \
                (alloc.n_slots * fmt.payload_words_per_flit * 4)
            state.credit_loop_slots = (alloc.path.traversal_slots * 2 +
                                       self.table_size)
        if self.check_contention:
            state.contention_keys = tuple(
                (link.key, shift) for link, shift in
                zip(alloc.path.links, alloc.path.link_shifts))
        return state

    def _apply_transition(self, states: dict[str, _ChannelRuntime],
                          schedule: list[list[_ChannelRuntime]],
                          stops: tuple[str, ...],
                          starts: tuple[ChannelAllocation, ...],
                          slot: int, n_slots: int,
                          patterns: dict[str, TrafficPattern],
                          incremental: bool,
                          register) -> list[list[_ChannelRuntime]]:
        """Apply one epoch boundary's stops and starts to the schedule.

        Incremental mode touches only the schedule rows of the changed
        channels, inserting new runtimes in source-NI order so the row
        ordering — and therefore every survivor's trace — is identical
        to a full recompilation.
        """
        for name in stops:
            state = states.pop(name, None)
            if state is None:
                raise SimulationError(
                    f"timeline stops unknown channel {name!r} at slot "
                    f"{slot}")
            if incremental:
                for table_slot in state.alloc.slots:
                    schedule[table_slot].remove(state)
        for alloc in starts:
            name = alloc.spec.name
            if name in states:
                raise SimulationError(
                    f"timeline starts channel {name!r} twice at slot "
                    f"{slot}")
            state = self._make_runtime(name, alloc, patterns.get(name),
                                       slot, n_slots)
            register(state)
            states[name] = state
            if incremental:
                source = alloc.path.source
                for table_slot in alloc.slots:
                    row = schedule[table_slot]
                    index = 0
                    while index < len(row) and \
                            row[index].alloc.path.source < source:
                        index += 1
                    row.insert(index, state)
        if not incremental:
            schedule = self._compile_schedule(states)
        return schedule

    def _compile_schedule(self, channels: dict[str, _ChannelRuntime]
                          ) -> list[list[_ChannelRuntime]]:
        """Flatten the slot tables into a per-table-slot state list.

        Within a slot, states are ordered by source NI name — the same
        deterministic order the per-NI scan used — so traces are
        bit-identical to the pre-flattened implementation.
        """
        by_ni_slot: dict[tuple[str, int], _ChannelRuntime] = {}
        for state in channels.values():
            for slot in state.alloc.slots:
                by_ni_slot[(state.alloc.path.source, slot)] = state
        ni_names = sorted({s.alloc.path.source for s in channels.values()})
        schedule: list[list[_ChannelRuntime]] = []
        for slot in range(self.table_size):
            row = [by_ni_slot[(ni, slot)] for ni in ni_names
                   if (ni, slot) in by_ni_slot]
            schedule.append(row)
        return schedule

    def _check_links(self, state: _ChannelRuntime, abs_slot: int,
                     occupancy: dict) -> None:
        name = state.name
        for link_key, shift in state.contention_keys:
            key = (link_key, abs_slot + shift)
            holder = occupancy.get(key)
            if holder is not None and holder != name:
                raise SimulationError(
                    f"link {link_key} carries two flits in absolute slot "
                    f"{abs_slot + shift}: {holder!r} and {name!r}")
            occupancy[key] = name
