"""Fast flit-level TDM simulator.

aelite is *flit-synchronous*: globally, the network behaves as a
synchronous machine whose unit of time is the flit cycle (one TDM slot).
This simulator exploits that property for speed: it advances slot by slot,
injecting at most one flit per NI per slot according to the slot tables,
and delivering each flit a fixed, path-determined number of slots later.
That fixed delivery offset is not an approximation — it is the defining
property of contention-free routing, which the detailed word-level
simulator (:mod:`repro.simulation.cyclesim`) independently verifies on the
same configurations.

What the flit simulator adds over pure analysis:

* actual queueing: messages wait for their channel's next reserved slot,
  so measured latency reflects arrival phasing, burstiness and head-of-line
  effects within a channel;
* end-to-end credit flow control (optional): oversubscribed channels slow
  down via back-pressure, without ever disturbing other channels;
* per-flit traces for the composability comparison;
* an optional paranoid mode asserting that no two flits ever occupy the
  same link in the same slot (the invariant the allocation guarantees).

Payload accounting is conservative (header word in every flit), matching
the allocator; packet continuation only improves real throughput.

The hot loop is organised around *flat injection-slot schedules*: the
slot tables are compiled once into a per-table-slot list of channel
runtime states and the per-channel arrival streams into flat arrays of
precomputed ready-slots, so a simulated slot touches exactly the
channels that own it instead of re-scanning every NI's table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.core.allocation import ChannelAllocation
from repro.core.configuration import NocConfiguration
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.words import WordFormat
from repro.simulation.monitors import (DeliveryRecord, InjectionRecord,
                                       StatsCollector, TraceRecorder,
                                       latency_digest)
from repro.simulation.traffic import TrafficPattern

__all__ = ["FlitLevelSimulator", "FlitSimResult"]


class _ChannelRuntime:
    """Per-channel state of one run, flattened for the hot loop.

    Arrival events are pre-expanded into parallel flat arrays
    (``ev_ready`` / ``ev_cycle`` / ``ev_words`` / ``ev_id``) with a
    cursor, so readiness is a single integer compare per scheduled slot.
    A pending message is a mutable ``[message_id, words_left,
    total_words, created_cycle]`` list.
    """

    __slots__ = ("name", "alloc", "ev_ready", "ev_cycle", "ev_words",
                 "ev_id", "ev_pos", "ev_len", "pending", "credits_words",
                 "flits_sent", "stalled_slots", "traversal_slots",
                 "credit_loop_slots", "contention_keys", "injections",
                 "deliveries", "trace_events")

    def __init__(self, name: str, alloc: ChannelAllocation):
        self.name = name
        self.alloc = alloc
        self.ev_ready: list[int] = []
        self.ev_cycle: list[int] = []
        self.ev_words: list[int] = []
        self.ev_id: list[int] = []
        self.ev_pos = 0
        self.ev_len = 0
        self.pending: deque[list[int]] = deque()
        self.credits_words: int | None = None
        self.flits_sent = 0
        self.stalled_slots = 0
        self.traversal_slots = alloc.path.traversal_slots
        self.credit_loop_slots = 0
        self.contention_keys: tuple[tuple[tuple[str, str], int], ...] = ()
        self.injections: list[InjectionRecord] = []
        self.deliveries: list[DeliveryRecord] = []
        self.trace_events: list[tuple[int, int, int]] | None = None


@dataclass
class FlitSimResult:
    """Everything a flit-level run produced."""

    stats: StatsCollector
    trace: TraceRecorder
    simulated_slots: int
    frequency_hz: float
    fmt: WordFormat
    stalled_slots_by_channel: dict[str, int]
    flits_by_channel: dict[str, int]

    @property
    def simulated_ns(self) -> float:
        """Simulated wall-clock time."""
        return (self.simulated_slots * self.fmt.flit_size /
                self.frequency_hz * 1e9)

    def channel_throughput_bytes_per_s(self, channel: str, *,
                                       warmup_fraction: float = 0.1
                                       ) -> float:
        """Delivered payload rate of one channel after warm-up."""
        total_ps = int(self.simulated_slots * self.fmt.flit_size *
                       1e12 / self.frequency_hz)
        start = int(total_ps * warmup_fraction)
        return self.stats.channel(channel).throughput_bytes_per_s(
            start, total_ps)

    def summary(self) -> str:
        """One-line latency digest for logs and the REPL."""
        return latency_digest("flit", self.stats, self.simulated_slots,
                              "slots", self.frequency_hz)

    def __repr__(self) -> str:
        return f"FlitSimResult({self.summary()})"


class FlitLevelSimulator:
    """Slot-by-slot simulator over a validated configuration."""

    def __init__(self, config: NocConfiguration, *,
                 flow_control: bool = False,
                 rx_buffer_words: int | None = None,
                 check_contention: bool = False):
        self.config = config
        self.fmt = config.fmt
        self.table_size = config.table_size
        self.frequency_hz = config.frequency_hz
        self.flow_control = flow_control
        self.rx_buffer_words = rx_buffer_words
        self.check_contention = check_contention
        self._patterns: dict[str, TrafficPattern] = {}

    def set_traffic(self, channel: str, pattern: TrafficPattern) -> None:
        """Attach a traffic pattern to one channel."""
        if channel not in self.config.allocation.channels:
            raise ConfigurationError(
                f"channel {channel!r} is not part of the configuration")
        self._patterns[channel] = pattern

    # -- main loop -------------------------------------------------------------

    def run(self, n_slots: int) -> FlitSimResult:
        """Simulate ``n_slots`` flit cycles and return all measurements."""
        if n_slots <= 0:
            raise ConfigurationError(f"n_slots must be positive, got {n_slots}")
        fmt = self.fmt
        flit_size = fmt.flit_size
        payload_per_flit = fmt.payload_words_per_flit
        bytes_per_word = fmt.bytes_per_word
        period_ps = round(1e12 / self.frequency_hz)
        table_size = self.table_size
        check_contention = self.check_contention
        stats = StatsCollector()
        trace = TraceRecorder()

        channels = self._build_channel_states(n_slots * flit_size)
        schedule = self._compile_schedule(channels)
        for state in channels.values():
            channel_stats = stats.sink(state.name)
            state.injections = channel_stats.injections
            state.deliveries = channel_stats.deliveries

        credit_returns: list[tuple[int, str, int]] = []  # (slot, ch, words)
        occupancy: dict[tuple[tuple[str, str], int], str] = {}
        injection_record = InjectionRecord
        delivery_record = DeliveryRecord

        for abs_slot in range(n_slots):
            # Release credits that completed their loop.
            while credit_returns and credit_returns[0][0] <= abs_slot:
                _, ch_name, words = heappop(credit_returns)
                state = channels[ch_name]
                if state.credits_words is not None:
                    state.credits_words += words
            for state in schedule[abs_slot % table_size]:
                # Move arrivals whose ready slot has passed into the queue.
                pos = state.ev_pos
                if pos < state.ev_len and state.ev_ready[pos] <= abs_slot:
                    pending_append = state.pending.append
                    ev_ready = state.ev_ready
                    while pos < state.ev_len and ev_ready[pos] <= abs_slot:
                        pending_append([state.ev_id[pos],
                                        state.ev_words[pos],
                                        state.ev_words[pos],
                                        state.ev_cycle[pos]])
                        pos += 1
                    state.ev_pos = pos
                pending = state.pending
                if not pending:
                    continue
                message = pending[0]
                words_left = message[1]
                payload_words = (words_left if words_left < payload_per_flit
                                 else payload_per_flit)
                credits = state.credits_words
                if credits is not None and credits < payload_words:
                    state.stalled_slots += 1
                    continue
                if check_contention:
                    self._check_links(state, abs_slot, occupancy)
                message[1] = words_left - payload_words
                if credits is not None:
                    state.credits_words = credits - payload_words
                    heappush(credit_returns,
                             (abs_slot + state.credit_loop_slots,
                              state.name, payload_words))
                state.flits_sent += 1
                cycle = abs_slot * flit_size
                state.injections.append(injection_record(
                    channel=state.name, message_id=message[0],
                    sequence=state.flits_sent - 1, slot_index=abs_slot,
                    cycle=cycle, time_ps=cycle * period_ps))
                if message[1] <= 0:
                    pending.popleft()
                    delivered_cycle = (abs_slot + state.traversal_slots) * \
                        flit_size
                    state.deliveries.append(delivery_record(
                        channel=state.name, message_id=message[0],
                        created_cycle=message[3],
                        created_time_ps=message[3] * period_ps,
                        delivered_cycle=delivered_cycle,
                        delivered_time_ps=delivered_cycle * period_ps,
                        payload_bytes=message[2] * bytes_per_word))
                    trace_events = state.trace_events
                    if trace_events is None:
                        trace_events = trace.channel_sink(state.name)
                        state.trace_events = trace_events
                    trace_events.append((message[0], abs_slot,
                                         delivered_cycle))
        stats.prune_empty()
        return FlitSimResult(
            stats=stats, trace=trace, simulated_slots=n_slots,
            frequency_hz=self.frequency_hz, fmt=fmt,
            stalled_slots_by_channel={
                name: st.stalled_slots for name, st in channels.items()},
            flits_by_channel={
                name: st.flits_sent for name, st in channels.items()})

    # -- helpers ---------------------------------------------------------------

    def _build_channel_states(self, horizon_cycles: int
                              ) -> dict[str, _ChannelRuntime]:
        fmt = self.fmt
        flit_size = fmt.flit_size
        states: dict[str, _ChannelRuntime] = {}
        for name, alloc in sorted(self.config.allocation.channels.items()):
            state = _ChannelRuntime(name, alloc)
            pattern = self._patterns.get(name)
            if pattern is not None:
                events = pattern.events(horizon_cycles)
                # ceil(cycle / flit_size): first slot whose boundary has
                # passed the arrival cycle.
                state.ev_ready = [-(-e.cycle // flit_size) for e in events]
                state.ev_cycle = [e.cycle for e in events]
                state.ev_words = [e.words for e in events]
                state.ev_id = [e.message_id for e in events]
                state.ev_len = len(events)
            if self.flow_control:
                state.credits_words = self.rx_buffer_words or \
                    (alloc.n_slots * fmt.payload_words_per_flit * 4)
                state.credit_loop_slots = (alloc.path.traversal_slots * 2 +
                                           self.table_size)
            if self.check_contention:
                state.contention_keys = tuple(
                    (link.key, shift) for link, shift in
                    zip(alloc.path.links, alloc.path.link_shifts))
            states[name] = state
        return states

    def _compile_schedule(self, channels: dict[str, _ChannelRuntime]
                          ) -> list[list[_ChannelRuntime]]:
        """Flatten the slot tables into a per-table-slot state list.

        Within a slot, states are ordered by source NI name — the same
        deterministic order the per-NI scan used — so traces are
        bit-identical to the pre-flattened implementation.
        """
        by_ni_slot: dict[tuple[str, int], _ChannelRuntime] = {}
        for state in channels.values():
            for slot in state.alloc.slots:
                by_ni_slot[(state.alloc.path.source, slot)] = state
        ni_names = sorted({s.alloc.path.source for s in channels.values()})
        schedule: list[list[_ChannelRuntime]] = []
        for slot in range(self.table_size):
            row = [by_ni_slot[(ni, slot)] for ni in ni_names
                   if (ni, slot) in by_ni_slot]
            schedule.append(row)
        return schedule

    def _check_links(self, state: _ChannelRuntime, abs_slot: int,
                     occupancy: dict) -> None:
        name = state.name
        for link_key, shift in state.contention_keys:
            key = (link_key, abs_slot + shift)
            holder = occupancy.get(key)
            if holder is not None and holder != name:
                raise SimulationError(
                    f"link {link_key} carries two flits in absolute slot "
                    f"{abs_slot + shift}: {holder!r} and {name!r}")
            occupancy[key] = name
