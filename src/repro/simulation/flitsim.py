"""Fast flit-level TDM simulator.

aelite is *flit-synchronous*: globally, the network behaves as a
synchronous machine whose unit of time is the flit cycle (one TDM slot).
This simulator exploits that property for speed: it advances slot by slot,
injecting at most one flit per NI per slot according to the slot tables,
and delivering each flit a fixed, path-determined number of slots later.
That fixed delivery offset is not an approximation — it is the defining
property of contention-free routing, which the detailed word-level
simulator (:mod:`repro.simulation.cyclesim`) independently verifies on the
same configurations.

What the flit simulator adds over pure analysis:

* actual queueing: messages wait for their channel's next reserved slot,
  so measured latency reflects arrival phasing, burstiness and head-of-line
  effects within a channel;
* end-to-end credit flow control (optional): oversubscribed channels slow
  down via back-pressure, without ever disturbing other channels;
* per-flit traces for the composability comparison;
* an optional paranoid mode asserting that no two flits ever occupy the
  same link in the same slot (the invariant the allocation guarantees).

Payload accounting is conservative (header word in every flit), matching
the allocator; packet continuation only improves real throughput.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.core.allocation import Allocation, ChannelAllocation
from repro.core.configuration import NocConfiguration
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.words import WordFormat
from repro.simulation.monitors import (DeliveryRecord, InjectionRecord,
                                       StatsCollector, TraceRecorder)
from repro.simulation.traffic import TrafficPattern

__all__ = ["FlitLevelSimulator", "FlitSimResult"]


@dataclass
class _PendingMessage:
    message_id: int
    words_left: int
    total_words: int
    created_cycle: int
    ready_slot: int


@dataclass
class _ChannelState:
    alloc: ChannelAllocation
    pattern_events: deque
    pending: deque[_PendingMessage] = field(default_factory=deque)
    credits_words: int | None = None
    flits_sent: int = 0
    stalled_slots: int = 0


@dataclass
class FlitSimResult:
    """Everything a flit-level run produced."""

    stats: StatsCollector
    trace: TraceRecorder
    simulated_slots: int
    frequency_hz: float
    fmt: WordFormat
    stalled_slots_by_channel: dict[str, int]
    flits_by_channel: dict[str, int]

    @property
    def simulated_ns(self) -> float:
        """Simulated wall-clock time."""
        return (self.simulated_slots * self.fmt.flit_size /
                self.frequency_hz * 1e9)

    def channel_throughput_bytes_per_s(self, channel: str, *,
                                       warmup_fraction: float = 0.1
                                       ) -> float:
        """Delivered payload rate of one channel after warm-up."""
        total_ps = int(self.simulated_slots * self.fmt.flit_size *
                       1e12 / self.frequency_hz)
        start = int(total_ps * warmup_fraction)
        return self.stats.channel(channel).throughput_bytes_per_s(
            start, total_ps)


class FlitLevelSimulator:
    """Slot-by-slot simulator over a validated configuration."""

    def __init__(self, config: NocConfiguration, *,
                 flow_control: bool = False,
                 rx_buffer_words: int | None = None,
                 check_contention: bool = False):
        self.config = config
        self.fmt = config.fmt
        self.table_size = config.table_size
        self.frequency_hz = config.frequency_hz
        self.flow_control = flow_control
        self.rx_buffer_words = rx_buffer_words
        self.check_contention = check_contention
        self._patterns: dict[str, TrafficPattern] = {}

    def set_traffic(self, channel: str, pattern: TrafficPattern) -> None:
        """Attach a traffic pattern to one channel."""
        if channel not in self.config.allocation.channels:
            raise ConfigurationError(
                f"channel {channel!r} is not part of the configuration")
        self._patterns[channel] = pattern

    # -- main loop -------------------------------------------------------------

    def run(self, n_slots: int) -> FlitSimResult:
        """Simulate ``n_slots`` flit cycles and return all measurements."""
        if n_slots <= 0:
            raise ConfigurationError(f"n_slots must be positive, got {n_slots}")
        fmt = self.fmt
        period_ps = round(1e12 / self.frequency_hz)
        horizon_cycles = n_slots * fmt.flit_size
        stats = StatsCollector()
        trace = TraceRecorder()

        channels = self._build_channel_states(horizon_cycles)
        # Injection schedule: per absolute slot (mod table) per NI.
        by_ni_slot: dict[tuple[str, int], _ChannelState] = {}
        for state in channels.values():
            for slot in state.alloc.slots:
                by_ni_slot[(state.alloc.path.source, slot)] = state
        ni_names = sorted({s.alloc.path.source for s in channels.values()})

        credit_returns: list[tuple[int, str, int]] = []  # (slot, ch, words)
        occupancy: dict[tuple[tuple[str, str], int], str] = {}

        for abs_slot in range(n_slots):
            table_slot = abs_slot % self.table_size
            # Release credits that completed their loop.
            while credit_returns and credit_returns[0][0] <= abs_slot:
                _, ch_name, words = heapq.heappop(credit_returns)
                state = channels[ch_name]
                if state.credits_words is not None:
                    state.credits_words += words
            for ni in ni_names:
                state = by_ni_slot.get((ni, table_slot))
                if state is None:
                    continue
                self._ready_messages(state, abs_slot, fmt)
                if not state.pending:
                    continue
                payload_words = min(state.pending[0].words_left,
                                    fmt.payload_words_per_flit)
                if state.credits_words is not None and \
                        state.credits_words < payload_words:
                    state.stalled_slots += 1
                    continue
                self._inject(state, abs_slot, payload_words, fmt,
                             period_ps, stats, trace, credit_returns,
                             occupancy)
        return FlitSimResult(
            stats=stats, trace=trace, simulated_slots=n_slots,
            frequency_hz=self.frequency_hz, fmt=fmt,
            stalled_slots_by_channel={
                name: st.stalled_slots for name, st in channels.items()},
            flits_by_channel={
                name: st.flits_sent for name, st in channels.items()})

    # -- helpers ---------------------------------------------------------------

    def _build_channel_states(self, horizon_cycles: int
                              ) -> dict[str, _ChannelState]:
        states: dict[str, _ChannelState] = {}
        for name, alloc in sorted(self.config.allocation.channels.items()):
            pattern = self._patterns.get(name)
            events = deque(pattern.events(horizon_cycles)) if pattern \
                else deque()
            credits = None
            if self.flow_control:
                credits = self.rx_buffer_words or \
                    (alloc.n_slots * self.fmt.payload_words_per_flit * 4)
            states[name] = _ChannelState(alloc=alloc,
                                         pattern_events=events,
                                         credits_words=credits)
        return states

    def _ready_messages(self, state: _ChannelState, abs_slot: int,
                        fmt: WordFormat) -> None:
        """Move pattern events whose cycle has passed into the queue."""
        boundary_cycle = abs_slot * fmt.flit_size
        events = state.pattern_events
        while events and events[0].cycle <= boundary_cycle:
            event = events.popleft()
            ready = -(-event.cycle // fmt.flit_size)  # ceil division
            state.pending.append(_PendingMessage(
                message_id=event.message_id, words_left=event.words,
                total_words=event.words, created_cycle=event.cycle,
                ready_slot=ready))

    def _inject(self, state: _ChannelState, abs_slot: int,
                payload_words: int, fmt: WordFormat, period_ps: int,
                stats: StatsCollector, trace: TraceRecorder,
                credit_returns: list, occupancy: dict) -> None:
        message = state.pending[0]
        alloc = state.alloc
        if self.check_contention:
            self._check_links(alloc, abs_slot, occupancy)
        message.words_left -= payload_words
        if state.credits_words is not None:
            state.credits_words -= payload_words
            loop = (alloc.path.traversal_slots * 2 +
                    self.table_size)  # conservative credit loop
            heapq.heappush(credit_returns,
                           (abs_slot + loop, alloc.spec.name, payload_words))
        state.flits_sent += 1
        stats.record_injection(InjectionRecord(
            channel=alloc.spec.name, message_id=message.message_id,
            sequence=state.flits_sent - 1, slot_index=abs_slot,
            cycle=abs_slot * fmt.flit_size,
            time_ps=abs_slot * fmt.flit_size * period_ps))
        if message.words_left <= 0:
            state.pending.popleft()
            delivered_cycle = (abs_slot + alloc.path.traversal_slots) * \
                fmt.flit_size
            stats.record_delivery(DeliveryRecord(
                channel=alloc.spec.name, message_id=message.message_id,
                created_cycle=message.created_cycle,
                created_time_ps=message.created_cycle * period_ps,
                delivered_cycle=delivered_cycle,
                delivered_time_ps=delivered_cycle * period_ps,
                payload_bytes=message.total_words * fmt.bytes_per_word))
            trace.record(alloc.spec.name, message.message_id, abs_slot,
                         delivered_cycle)

    def _check_links(self, alloc: ChannelAllocation, abs_slot: int,
                     occupancy: dict) -> None:
        for link, shift in zip(alloc.path.links, alloc.path.link_shifts):
            key = (link.key, abs_slot + shift)
            holder = occupancy.get(key)
            if holder is not None and holder != alloc.spec.name:
                raise SimulationError(
                    f"link {link.key} carries two flits in absolute slot "
                    f"{abs_slot + shift}: {holder!r} and "
                    f"{alloc.spec.name!r}")
            occupancy[key] = alloc.spec.name
