"""Composability verification: the paper's isolation claim, made testable.

aelite claims *composable* services: applications can be developed and
verified in isolation because sharing the NoC does not change their
temporal behaviour at all.  The strongest checkable form of that claim is
trace equality — every flit of an application injects and arrives at
exactly the same cycle whether or not any other application runs, and
regardless of how other applications behave.

:func:`compare_subsets` runs a configured network once with all
applications active and once per scenario (subsets, perturbed traffic) and
reports per-channel trace equality.  The comparison is phrased entirely in
terms of the :class:`~repro.simulation.backend.SimulationBackend`
protocol, so *any* backend can be put under the isolation microscope: the
TDM backends pass by construction; the best-effort baseline
(:mod:`repro.baseline`) measurably fails, which is the point of the
paper's Section VII comparison.

:func:`verify_timeline` is the *dynamic* form of the same claim — the
paper's strongest statement, that starting or stopping an application
does not perturb a running application *by a single cycle*.  It executes
a :class:`~repro.core.timeline.ReconfigurationTimeline` of live churn
twice: once in full and once restricted to the surviving channels (the
solo reference), then requires the survivors' flit traces to be
bit-identical across every reconfiguration epoch.  On the TDM flit
backend that holds by construction; on the best-effort baseline the same
timeline measurably diverges.

Both checks consume traces through the
:class:`~repro.simulation.monitors.TraceRecorder` interface only, so
they work unchanged over the compiled vectorised executor
(:mod:`repro.simulation.compiled`): its recorder materialises each
channel's trace from the interval arrays on first access, and only for
the channels a comparison actually touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.configuration import NocConfiguration
from repro.core.timeline import ReconfigurationTimeline, replay_configuration
from repro.simulation.backend import (FlitLevelBackend, SimRequest,
                                      SimulationBackend)
from repro.simulation.monitors import TraceRecorder
from repro.simulation.traffic import ConstantBitRate, TrafficPattern

__all__ = ["ComposabilityReport", "run_with_channels", "compare_subsets",
           "DynamicComposabilityReport", "replay_traffic",
           "verify_timeline"]

#: Builds the backend a comparison runs on; defaults to flit-level.
BackendFactory = Callable[[NocConfiguration], SimulationBackend]


@dataclass(frozen=True)
class ComposabilityReport:
    """Outcome of one isolation comparison.

    ``identical`` lists channels whose traces matched exactly between the
    reference run and the scenario run; ``diverged`` lists those that did
    not (for aelite this must always be empty).
    """

    scenario: str
    identical: tuple[str, ...]
    diverged: tuple[str, ...]

    @property
    def is_composable(self) -> bool:
        """True when every compared channel behaved identically."""
        return not self.diverged


def run_with_channels(config: NocConfiguration,
                      traffic: dict[str, TrafficPattern],
                      active_channels: set[str], n_slots: int,
                      *, flow_control: bool = False,
                      backend_factory: BackendFactory | None = None
                      ) -> TraceRecorder:
    """Run one backend with only some channels offered traffic.

    Channels outside ``active_channels`` keep their slot reservations (the
    allocation is untouched — stopping an application does not reconfigure
    the network) but offer no traffic, exactly like a stopped application.
    ``backend_factory`` selects the simulator; the default is the fast
    flit-level backend.  ``flow_control`` only applies to that default,
    so combining it with a factory is a conflict, not a preference.
    """
    if backend_factory is None:
        backend = FlitLevelBackend(config, flow_control=flow_control)
    else:
        if flow_control:
            raise ValueError(
                "flow_control only applies to the default flit-level "
                "backend; configure flow control inside backend_factory "
                "instead")
        backend = backend_factory(config)
    request = SimRequest(
        n_slots=n_slots,
        traffic={channel: pattern for channel, pattern in traffic.items()
                 if channel in active_channels})
    return backend.run(request).composability_trace()


def compare_subsets(config: NocConfiguration,
                    traffic: dict[str, TrafficPattern],
                    scenarios: dict[str, set[str]],
                    n_slots: int, *,
                    backend_factory: BackendFactory | None = None
                    ) -> list[ComposabilityReport]:
    """Compare a full run against every scenario's restricted run.

    Parameters
    ----------
    scenarios:
        Maps a scenario name to the set of channels active in it.  Each
        scenario is compared to the all-channels reference on the channels
        *common* to both (the survivors), which must be unaffected.
    backend_factory:
        Which backend to compare on (default: flit-level).  Passing the
        best-effort backend demonstrates where isolation is lost.
    """
    all_channels = set(traffic)
    reference = run_with_channels(config, traffic, all_channels, n_slots,
                                  backend_factory=backend_factory)
    reports: list[ComposabilityReport] = []
    for name, active in sorted(scenarios.items()):
        restricted = run_with_channels(config, traffic, active, n_slots,
                                       backend_factory=backend_factory)
        identical: list[str] = []
        diverged: list[str] = []
        for ch in sorted(active & all_channels):
            matched = reference.trace(ch) == restricted.trace(ch)
            (identical if matched else diverged).append(ch)
        reports.append(ComposabilityReport(
            scenario=name, identical=tuple(identical),
            diverged=tuple(diverged)))
    return reports


@dataclass(frozen=True)
class DynamicComposabilityReport:
    """Outcome of one churn-vs-solo timeline comparison.

    ``survivors`` are the channels compared (present, with identical
    start slots and allocations, in both the full churn run and the solo
    reference); ``n_epochs`` counts the full timeline's reconfiguration
    epochs the survivors lived through.
    """

    scenario: str
    backend: str
    n_epochs: int
    survivors: tuple[str, ...]
    identical: tuple[str, ...]
    diverged: tuple[str, ...]
    #: Optional guarantee-conformance verdict over the survivors
    #: (:class:`~repro.telemetry.monitor.ConformanceReport`), populated
    #: when :func:`verify_timeline` runs with a ``monitor`` spec.
    #: Deliberately excluded from :meth:`to_record`, so monitored runs
    #: serialise byte-identically to unmonitored ones.
    conformance: object = field(default=None, compare=False, repr=False)

    @property
    def is_composable(self) -> bool:
        """True when every survivor behaved identically under churn."""
        return not self.diverged

    def to_record(self) -> dict[str, object]:
        """Deterministic JSON-ready verdict."""
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "n_epochs": self.n_epochs,
            "n_survivors": len(self.survivors),
            "survivors": list(self.survivors),
            "identical": len(self.identical),
            "diverged": list(self.diverged),
            "composable": self.is_composable,
        }


def replay_traffic(timeline: ReconfigurationTimeline, *,
                   rate_factor: float = 1.0
                   ) -> dict[str, TrafficPattern]:
    """CBR traffic at every timeline channel's required rate.

    Patterns are interpreted relative to each channel's start slot, so
    one pattern per channel covers restarts too.
    """
    return {
        name: ConstantBitRate.from_rate(
            ca.spec.throughput_bytes_per_s * rate_factor,
            timeline.frequency_hz, timeline.fmt)
        for name, ca in sorted(timeline.channel_allocations().items())}


def verify_timeline(timeline: ReconfigurationTimeline,
                    traffic: dict[str, TrafficPattern], *,
                    survivors: Iterable[str] | None = None,
                    n_slots: int | None = None,
                    backend_factory: BackendFactory | None = None,
                    scenario: str = "churn-vs-solo",
                    monitor: object | None = None
                    ) -> DynamicComposabilityReport:
    """Replay a churn timeline and check survivors against a solo run.

    The timeline is executed twice on the same backend: once in full
    (every recorded start/stop applied at its slot) and once restricted
    to the ``survivors`` (default: every channel still running at the
    horizon).  A TDM backend must produce bit-identical survivor traces;
    the best-effort baseline (:class:`~repro.simulation.backend.
    BestEffortBackend` via ``backend_factory``) demonstrably does not.

    ``monitor`` (a :class:`~repro.telemetry.monitor.MonitorSpec`) adds
    the guarantee-conformance watchdog: the churn run's observed
    latencies and delivered throughput, restricted to the survivors
    (whose allocations never change, so the static bounds apply), are
    checked against the analytical bounds and attached as
    ``report.conformance``.  The canonical record is unaffected.
    """
    config = replay_configuration(timeline)
    if backend_factory is None:
        backend = FlitLevelBackend(config)
    else:
        backend = backend_factory(config)
    if n_slots is None:
        n_slots = timeline.horizon_slots
    if survivors is None:
        # Survivors of the *simulated window*: channels still running
        # when the run ends, even if the full timeline stops them later.
        survivors = timeline.survivors(until=n_slots)
    survivors = tuple(sorted(survivors))
    unknown = sorted(set(survivors) - set(timeline.channel_names))
    if unknown:
        raise ValueError(
            f"survivors name channels outside the timeline: {unknown}")
    churn_result = backend.run(SimRequest(
        n_slots=n_slots, traffic=traffic, timeline=timeline))
    churn = churn_result.composability_trace()
    survivor_set = set(survivors)
    solo = backend.run(SimRequest(
        n_slots=n_slots,
        traffic={ch: pattern for ch, pattern in traffic.items()
                 if ch in survivor_set},
        timeline=timeline.restricted_to(survivors))).composability_trace()
    identical: list[str] = []
    diverged: list[str] = []
    for ch in survivors:
        matched = churn.trace(ch) == solo.trace(ch)
        (identical if matched else diverged).append(ch)
    # Count only epochs the run actually entered (boundaries beyond a
    # truncated window were never simulated).
    n_epochs = sum(1 for boundary in timeline.epoch_boundaries()
                   if boundary < n_slots)
    conformance = None
    if monitor is not None and monitor is not False:
        from repro.telemetry.monitor import MonitorSpec, timeline_conformance
        if monitor is True:
            monitor = MonitorSpec()
        conformance = timeline_conformance(
            timeline, churn_result, n_slots=n_slots, channels=survivors,
            spec=monitor, scenario=scenario)
    return DynamicComposabilityReport(
        scenario=scenario, backend=backend.name,
        n_epochs=n_epochs, survivors=survivors,
        identical=tuple(identical), diverged=tuple(diverged),
        conformance=conformance)
