"""Composability verification: the paper's isolation claim, made testable.

aelite claims *composable* services: applications can be developed and
verified in isolation because sharing the NoC does not change their
temporal behaviour at all.  The strongest checkable form of that claim is
trace equality — every flit of an application injects and arrives at
exactly the same cycle whether or not any other application runs, and
regardless of how other applications behave.

:func:`compare_subsets` runs a configured network once with all
applications active and once per scenario (subsets, perturbed traffic) and
reports per-channel trace equality.  The comparison is phrased entirely in
terms of the :class:`~repro.simulation.backend.SimulationBackend`
protocol, so *any* backend can be put under the isolation microscope: the
TDM backends pass by construction; the best-effort baseline
(:mod:`repro.baseline`) measurably fails, which is the point of the
paper's Section VII comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.configuration import NocConfiguration
from repro.simulation.backend import (FlitLevelBackend, SimRequest,
                                      SimulationBackend)
from repro.simulation.monitors import TraceRecorder
from repro.simulation.traffic import TrafficPattern

__all__ = ["ComposabilityReport", "run_with_channels", "compare_subsets"]

#: Builds the backend a comparison runs on; defaults to flit-level.
BackendFactory = Callable[[NocConfiguration], SimulationBackend]


@dataclass(frozen=True)
class ComposabilityReport:
    """Outcome of one isolation comparison.

    ``identical`` lists channels whose traces matched exactly between the
    reference run and the scenario run; ``diverged`` lists those that did
    not (for aelite this must always be empty).
    """

    scenario: str
    identical: tuple[str, ...]
    diverged: tuple[str, ...]

    @property
    def is_composable(self) -> bool:
        """True when every compared channel behaved identically."""
        return not self.diverged


def run_with_channels(config: NocConfiguration,
                      traffic: dict[str, TrafficPattern],
                      active_channels: set[str], n_slots: int,
                      *, flow_control: bool = False,
                      backend_factory: BackendFactory | None = None
                      ) -> TraceRecorder:
    """Run one backend with only some channels offered traffic.

    Channels outside ``active_channels`` keep their slot reservations (the
    allocation is untouched — stopping an application does not reconfigure
    the network) but offer no traffic, exactly like a stopped application.
    ``backend_factory`` selects the simulator; the default is the fast
    flit-level backend (``flow_control`` only applies to that default).
    """
    if backend_factory is None:
        backend = FlitLevelBackend(config, flow_control=flow_control)
    else:
        backend = backend_factory(config)
    request = SimRequest(
        n_slots=n_slots,
        traffic={channel: pattern for channel, pattern in traffic.items()
                 if channel in active_channels})
    return backend.run(request).composability_trace()


def compare_subsets(config: NocConfiguration,
                    traffic: dict[str, TrafficPattern],
                    scenarios: dict[str, set[str]],
                    n_slots: int, *,
                    backend_factory: BackendFactory | None = None
                    ) -> list[ComposabilityReport]:
    """Compare a full run against every scenario's restricted run.

    Parameters
    ----------
    scenarios:
        Maps a scenario name to the set of channels active in it.  Each
        scenario is compared to the all-channels reference on the channels
        *common* to both (the survivors), which must be unaffected.
    backend_factory:
        Which backend to compare on (default: flit-level).  Passing the
        best-effort backend demonstrates where isolation is lost.
    """
    all_channels = set(traffic)
    reference = run_with_channels(config, traffic, all_channels, n_slots,
                                  backend_factory=backend_factory)
    reports: list[ComposabilityReport] = []
    for name, active in sorted(scenarios.items()):
        restricted = run_with_channels(config, traffic, active, n_slots,
                                       backend_factory=backend_factory)
        compare_on = sorted(active & all_channels)
        identical = tuple(
            ch for ch in compare_on
            if reference.trace(ch) == restricted.trace(ch))
        diverged = tuple(
            ch for ch in compare_on
            if reference.trace(ch) != restricted.trace(ch))
        reports.append(ComposabilityReport(
            scenario=name, identical=identical, diverged=diverged))
    return reports
