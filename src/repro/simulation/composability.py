"""Composability verification: the paper's isolation claim, made testable.

aelite claims *composable* services: applications can be developed and
verified in isolation because sharing the NoC does not change their
temporal behaviour at all.  The strongest checkable form of that claim is
trace equality — every flit of an application injects and arrives at
exactly the same cycle whether or not any other application runs, and
regardless of how other applications behave.

:func:`compare_subsets` runs a configured network once with all
applications active and once per scenario (subsets, perturbed traffic) and
reports per-channel trace equality.  The TDM simulator passes this check
by construction; the best-effort baseline (:mod:`repro.baseline`)
measurably fails it, which is the point of the paper's Section VII
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import NocConfiguration
from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.monitors import TraceRecorder
from repro.simulation.traffic import TrafficPattern

__all__ = ["ComposabilityReport", "run_with_channels", "compare_subsets"]


@dataclass(frozen=True)
class ComposabilityReport:
    """Outcome of one isolation comparison.

    ``identical`` lists channels whose traces matched exactly between the
    reference run and the scenario run; ``diverged`` lists those that did
    not (for aelite this must always be empty).
    """

    scenario: str
    identical: tuple[str, ...]
    diverged: tuple[str, ...]

    @property
    def is_composable(self) -> bool:
        """True when every compared channel behaved identically."""
        return not self.diverged


def run_with_channels(config: NocConfiguration,
                      traffic: dict[str, TrafficPattern],
                      active_channels: set[str], n_slots: int,
                      *, flow_control: bool = False) -> TraceRecorder:
    """Run the flit-level simulator with only some channels offered traffic.

    Channels outside ``active_channels`` keep their slot reservations (the
    allocation is untouched — stopping an application does not reconfigure
    the network) but offer no traffic, exactly like a stopped application.
    """
    sim = FlitLevelSimulator(config, flow_control=flow_control)
    for channel, pattern in traffic.items():
        if channel in active_channels:
            sim.set_traffic(channel, pattern)
    return sim.run(n_slots).trace


def compare_subsets(config: NocConfiguration,
                    traffic: dict[str, TrafficPattern],
                    scenarios: dict[str, set[str]],
                    n_slots: int) -> list[ComposabilityReport]:
    """Compare a full run against every scenario's restricted run.

    Parameters
    ----------
    scenarios:
        Maps a scenario name to the set of channels active in it.  Each
        scenario is compared to the all-channels reference on the channels
        *common* to both (the survivors), which must be unaffected.
    """
    all_channels = set(traffic)
    reference = run_with_channels(config, traffic, all_channels, n_slots)
    reports: list[ComposabilityReport] = []
    for name, active in sorted(scenarios.items()):
        restricted = run_with_channels(config, traffic, active, n_slots)
        compare_on = sorted(active & all_channels)
        identical = tuple(
            ch for ch in compare_on
            if reference.trace(ch) == restricted.trace(ch))
        diverged = tuple(
            ch for ch in compare_on
            if reference.trace(ch) != restricted.trace(ch))
        reports.append(ComposabilityReport(
            scenario=name, identical=identical, diverged=diverged))
    return reports
