"""Detailed word-level network simulation.

Builds a complete cycle-accurate model of a configured aelite network —
NIs, routers, link pipeline stages, asynchronous wrappers — and runs it on
the multi-domain engine.  Three clocking schemes are supported, matching
the paper's three deployment styles:

* ``"synchronous"`` — one global clock, plain wires (Section IV baseline);
* ``"mesochronous"`` — one clock region per router (its NIs share it),
  equal periods with per-region phase offsets, and a bi-synchronous link
  pipeline stage per ``Link.pipeline_stages`` on every router-router link
  (Section V);
* ``"asynchronous"`` — every router and NI wrapped into a stallable
  process with token-based synchronisation; clocks may be plesiochronous
  (Section VI).

The detailed simulator is the ground truth the fast flit-level simulator
is validated against: integration tests assert both produce identical
logical flit schedules on the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocking.clock import ClockDomain
from repro.clocking.domains import (mesochronous_domains,
                                    plesiochronous_domains,
                                    synchronous_domains)
from repro.core.configuration import NocConfiguration
from repro.core.exceptions import ConfigurationError
from repro.link.mesochronous import MesochronousLinkStage, make_stage
from repro.ni.network_interface import (NetworkInterface, RxQueueConfig,
                                        TxChannelConfig)
from repro.router.synchronous import SynchronousRouter
from repro.simulation.engine import Engine
from repro.simulation.monitors import StatsCollector
from repro.simulation.traffic import GeneratorComponent, TrafficPattern
from repro.topology.graph import NodeKind
from repro.wrapper.asynchronous import (AsyncWrapper, DeadlockWatchdog,
                                        connect_wrappers)

__all__ = ["DetailedNetwork", "DetailedSimResult"]

_CLOCKING_MODES = ("synchronous", "mesochronous", "asynchronous")


@dataclass
class DetailedSimResult:
    """Measurements from a detailed word-level run."""

    stats: StatsCollector
    simulated_cycles: int
    frequency_hz: float
    fifo_max_occupancy: dict[str, int] = field(default_factory=dict)
    wrapper_firings: dict[str, int] = field(default_factory=dict)
    ni_counters: dict[str, dict[str, int]] = field(default_factory=dict)


class DetailedNetwork:
    """A fully elaborated cycle-accurate network model."""

    def __init__(self, config: NocConfiguration, *,
                 clocking: str = "synchronous",
                 domains: dict[str, ClockDomain] | None = None,
                 mesochronous_seed: int = 1,
                 plesiochronous_ppm: float = 200.0,
                 traffic: dict[str, TrafficPattern] | None = None,
                 horizon_slots: int = 1024,
                 flow_control_pairs: dict[str, str] | None = None,
                 rx_capacity_words: int = 256):
        if clocking not in _CLOCKING_MODES:
            raise ConfigurationError(
                f"unknown clocking mode {clocking!r}; expected one of "
                f"{_CLOCKING_MODES}")
        self.config = config
        self.clocking = clocking
        self.fmt = config.fmt
        self.engine = Engine()
        self.stats = StatsCollector()
        self.horizon_cycles = horizon_slots * self.fmt.flit_size
        self._traffic = dict(traffic or {})
        self._fc_pairs = dict(flow_control_pairs or {})
        self._rx_capacity_words = rx_capacity_words

        self.domains = domains or self._default_domains(
            mesochronous_seed, plesiochronous_ppm)
        self.nis: dict[str, NetworkInterface] = {}
        self.routers: dict[str, SynchronousRouter] = {}
        self.stages: list[MesochronousLinkStage] = []
        self.wrappers: dict[str, AsyncWrapper] = {}
        self._queue_ids: dict[str, int] = {}

        self._build_elements()
        if clocking == "asynchronous":
            self._wire_asynchronous()
        else:
            self._wire_synchronous_or_meso()
        self._register_components()

    # -- clocking -------------------------------------------------------------

    def _default_domains(self, meso_seed: int,
                         ppm: float) -> dict[str, ClockDomain]:
        topo = self.config.topology
        freq = self.config.frequency_hz
        if self.clocking == "synchronous":
            return synchronous_domains(
                list(topo.routers) + list(topo.nis), freq)
        if self.clocking == "mesochronous":
            region = mesochronous_domains(topo.routers, freq,
                                          seed=meso_seed)
            domains = dict(region)
            for ni in topo.nis:
                domains[ni] = region[topo.attached_router(ni)]
            return domains
        return plesiochronous_domains(
            list(topo.routers) + list(topo.nis), freq, ppm=ppm,
            seed=meso_seed)

    def clock_of(self, node: str) -> ClockDomain:
        """Clock domain of a topology node."""
        return self.domains[node]

    # -- element construction ----------------------------------------------------

    def _build_elements(self) -> None:
        topo = self.config.topology
        allocation = self.config.allocation
        # Destination queue ids: per NI, enumerate incoming channels.
        for ni in topo.nis:
            for qid, ca in enumerate(allocation.channels_to_ni(ni)):
                if qid > self.fmt.max_queue:
                    raise ConfigurationError(
                        f"NI {ni!r} needs more RX queues than the "
                        f"{self.fmt.queue_bits}-bit queue field allows")
                self._queue_ids[ca.spec.name] = qid
        for router in topo.routers:
            graph = topo.graph
            self.routers[router] = SynchronousRouter(
                router, n_inputs=graph.in_degree(router),
                n_outputs=graph.out_degree(router), fmt=self.fmt)
        for ni in topo.nis:
            self.nis[ni] = self._build_ni(ni)

    def _build_ni(self, ni: str) -> NetworkInterface:
        allocation = self.config.allocation
        # fc_pairs maps a flow-controlled channel to the reverse channel
        # that returns its credits; ``inverse`` answers "whose credits does
        # this channel carry?".
        inverse = {rev: fwd for fwd, rev in self._fc_pairs.items()}
        local_sources = {ca.spec.name
                         for ca in allocation.channels_from_ni(ni)}
        tx_configs = []
        for ca in allocation.channels_from_ni(ni):
            name = ca.spec.name
            initial_credits = (self._rx_capacity_words
                               if name in self._fc_pairs else None)
            carried_for = inverse.get(name)
            credit_source = (self._queue_ids.get(carried_for)
                             if carried_for is not None else None)
            tx_configs.append(TxChannelConfig(
                name=name,
                path_field=ca.path.header_path_field(self.fmt),
                queue_id=self._queue_ids[name],
                initial_credits=initial_credits,
                credit_source_queue=credit_source))
        rx_configs = []
        for ca in allocation.channels_to_ni(ni):
            name = ca.spec.name
            # Credits piggybacked on this incoming channel replenish the
            # local TX channel whose credit-return path it is.
            replenishes = inverse.get(name)
            credit_target = replenishes if replenishes in local_sources \
                else None
            rx_configs.append(RxQueueConfig(
                queue_id=self._queue_ids[name], channel=name,
                capacity_words=self._rx_capacity_words,
                credit_target_tx=credit_target))
        table = allocation.ni_injection_table(ni)
        # Pre-warm the compiled slot-owner row: injection tables are
        # immutable for the run, so every ``_begin_slot`` then indexes
        # one shared tuple — the same flat schedule representation the
        # compiled flit executor derives its reserved-slot arrays from.
        table.owner_row()
        return NetworkInterface(
            ni, table, self.fmt,
            tx_channels=tx_configs, rx_queues=rx_configs, stats=self.stats)

    # -- wiring ----------------------------------------------------------------

    def _element(self, node: str):
        if self.config.topology.kind(node) is NodeKind.ROUTER:
            return self.routers[node]
        return self.nis[node]

    def _wire_synchronous_or_meso(self) -> None:
        topo = self.config.topology
        for link in topo.links:
            src = self._element(link.src)
            dst = self._element(link.dst)
            upstream_wire = src.outputs[link.src_port]
            if link.pipeline_stages == 0:
                if self.domains[link.src] != self.domains[link.dst]:
                    raise ConfigurationError(
                        f"link {link.key} crosses clock domains but has no "
                        "pipeline stage; add stages or use synchronous "
                        "clocking")
                dst.inputs[link.dst_port] = upstream_wire
                continue
            # Chain of mesochronous stages; each consumes one TDM slot.
            writer_clock = self.domains[link.src]
            reader_clocks = self._stage_clocks(link)
            wire = upstream_wire
            for index, reader_clock in enumerate(reader_clocks):
                stage = make_stage(
                    self.engine,
                    f"{link.src}->{link.dst}.s{index}",
                    writer_clock, reader_clock, self.fmt)
                stage.writer.inputs[0] = wire
                wire = stage.outputs[0]
                writer_clock = reader_clock
                self.stages.append(stage)
            dst.inputs[link.dst_port] = wire

    def _stage_clocks(self, link) -> list[ClockDomain]:
        """Reader clocks for each stage: interpolate phases, end at dst."""
        src_clock = self.domains[link.src]
        dst_clock = self.domains[link.dst]
        n = link.pipeline_stages
        clocks: list[ClockDomain] = []
        for index in range(1, n):
            frac = index / n
            phase = round(src_clock.phase_ps +
                          (dst_clock.phase_ps - src_clock.phase_ps) * frac)
            clocks.append(ClockDomain(
                name=f"clk_{link.src}->{link.dst}.s{index - 1}",
                period_ps=src_clock.period_ps, phase_ps=phase))
        clocks.append(dst_clock)
        return clocks

    def _wire_asynchronous(self) -> None:
        topo = self.config.topology
        for node in list(topo.routers) + list(topo.nis):
            inner = self._element(node)
            self.wrappers[node] = AsyncWrapper(
                f"w_{node}", inner, self.domains[node], self.fmt,
                is_ni=topo.kind(node) is NodeKind.NI)
        for link in topo.links:
            latency = max(1, self.domains[link.src].period_ps // 2)
            connect_wrappers(self.wrappers[link.src], link.src_port,
                             self.wrappers[link.dst], link.dst_port,
                             latency_ps=latency)

    # -- registration --------------------------------------------------------------

    def _register_components(self) -> None:
        topo = self.config.topology
        # Traffic generators first: their compute must precede their NI's
        # slot decision on the same edge.
        for channel, pattern in sorted(self._traffic.items()):
            ca = self.config.allocation.channel(channel)
            ni = self.nis[ca.path.source]
            clock = self.domains[ca.path.source]
            self.engine.add_component(clock, GeneratorComponent(
                ni, channel, pattern, self.horizon_cycles, clock))
        if self.clocking == "asynchronous":
            for node, wrapper in sorted(self.wrappers.items()):
                self.engine.add_component(self.domains[node], wrapper)
            self.engine.add_watcher(DeadlockWatchdog(
                list(self.wrappers.values()),
                timeout_ps=self._watchdog_timeout_ps()))
            return
        for ni_name in topo.nis:
            ni = self.nis[ni_name]
            self.engine.add_component(self.domains[ni_name], ni)
            self.engine.add_wire(self.domains[ni_name], ni.outputs[0])
        for router_name in topo.routers:
            router = self.routers[router_name]
            self.engine.add_component(self.domains[router_name], router)
            for wire in router.outputs:
                self.engine.add_wire(self.domains[router_name], wire)

    def _watchdog_timeout_ps(self) -> int:
        slowest = max(c.period_ps for c in self.domains.values())
        # Generous: 32 flit cycles of the slowest clock without a firing
        # indicates deadlock, not congestion (the wrapper network fires
        # every flit cycle in steady state).
        return 32 * self.fmt.flit_size * slowest

    # -- execution -------------------------------------------------------------------

    def run(self, n_slots: int | None = None) -> DetailedSimResult:
        """Run for ``n_slots`` flit cycles (default: the build horizon)."""
        slots = n_slots if n_slots is not None else \
            self.horizon_cycles // self.fmt.flit_size
        cycles = slots * self.fmt.flit_size
        slowest = max(c.period_ps for c in self.domains.values())
        self.engine.run_until(cycles * slowest + slowest)
        fifo_occ = {s.fifo.name: s.fifo.max_occupancy for s in self.stages}
        for node, wrapper in self.wrappers.items():
            for ipi in wrapper.ipis:
                fifo_occ[ipi.name] = ipi.max_occupancy
        return DetailedSimResult(
            stats=self.stats, simulated_cycles=cycles,
            frequency_hz=self.config.frequency_hz,
            fifo_max_occupancy=fifo_occ,
            wrapper_firings={n: w.firings
                             for n, w in self.wrappers.items()},
            ni_counters={
                name: {"flits_injected": ni.flits_injected,
                       "flits_received": ni.flits_received,
                       "stalled_slots": ni.stalled_slots}
                for name, ni in self.nis.items()})
