"""Discrete-event kernel for multi-clock-domain cycle-accurate simulation.

Components implement the :class:`Clocked` protocol and are registered on a
:class:`~repro.clocking.clock.ClockDomain`.  The kernel advances a global
integer-picosecond timeline; at every instant where one or more clocks have
a rising edge it runs **all** compute callbacks of the components on those
clocks, then **all** commit callbacks, then latches the output wires
registered on those clocks.

This two-phase discipline models edge-triggered hardware exactly: at a
given edge every flip-flop reads its D input as produced by the *previous*
cycle, regardless of Python iteration order.  When edges of different
domains coincide at the same picosecond, they are treated as simultaneous
(compute-all / commit-all), which corresponds to the zero-skew corner;
proper clock-domain-crossing components (the bi-synchronous FIFO) add the
synchronisation latency that real hardware needs in that corner.

Components may raise :class:`~repro.core.exceptions.SimulationError` from
either phase; the kernel annotates it with the simulated time and re-raises.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol, runtime_checkable

from repro.clocking.clock import ClockDomain
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.simulation.signals import WordWire

__all__ = ["Clocked", "Engine"]


@runtime_checkable
class Clocked(Protocol):
    """Protocol for edge-triggered components.

    ``compute(cycle, time_ps)`` must only *read* wires and internal state;
    ``commit(cycle, time_ps)`` latches state and drives output wires.
    ``cycle`` counts this component's own clock edges from 0.
    """

    def compute(self, cycle: int, time_ps: int) -> None:  # pragma: no cover
        ...

    def commit(self, cycle: int, time_ps: int) -> None:  # pragma: no cover
        ...


class _DomainGroup:
    """All components and wires driven by one clock domain."""

    __slots__ = ("clock", "components", "wires", "next_edge_index")

    def __init__(self, clock: ClockDomain):
        self.clock = clock
        self.components: list[Clocked] = []
        self.wires: list[WordWire] = []
        self.next_edge_index = 0


class Engine:
    """Multi-domain two-phase simulation kernel."""

    def __init__(self):
        self._groups: dict[str, _DomainGroup] = {}
        self._watchers: list[Callable[[int], None]] = []
        self.now_ps = 0

    # -- construction ---------------------------------------------------------

    def add_component(self, clock: ClockDomain, component: Clocked) -> None:
        """Register a component on a clock domain."""
        self._group(clock).components.append(component)

    def add_wire(self, clock: ClockDomain, wire: WordWire) -> None:
        """Register an output wire latched on ``clock``'s edges."""
        self._group(clock).wires.append(wire)

    def add_watcher(self, fn: Callable[[int], None]) -> None:
        """Add a callback invoked after every simulated instant.

        Watchers receive the time in ps; they are used for progress /
        deadlock detection and for global invariant checks.
        """
        self._watchers.append(fn)

    def _group(self, clock: ClockDomain) -> _DomainGroup:
        group = self._groups.get(clock.name)
        if group is None:
            group = _DomainGroup(clock)
            self._groups[clock.name] = group
        elif group.clock != clock:
            raise ConfigurationError(
                f"two different clocks registered under name {clock.name!r}")
        return group

    # -- execution --------------------------------------------------------------

    def run_for(self, duration_ps: int) -> None:
        """Advance the simulation by ``duration_ps`` picoseconds."""
        self.run_until(self.now_ps + duration_ps)

    def run_until(self, t_end_ps: int) -> None:
        """Run all edges strictly before ``t_end_ps``."""
        if t_end_ps < self.now_ps:
            raise ConfigurationError(
                f"cannot run backwards: now={self.now_ps}, end={t_end_ps}")
        if not self._groups:
            self.now_ps = t_end_ps
            return
        if len(self._groups) == 1:
            # Synchronous designs share one clock domain (see
            # ``cyclesim``): every edge fires the whole design, so the
            # heap degenerates to a fixed-stride walk.  Edges are
            # strictly uniform (``phase + n * period``), which makes the
            # incremental ``t += period`` exact.
            (group,) = self._groups.values()
            period = group.clock.period_ps
            t = group.clock.edge_time(group.next_edge_index)
            while t < self.now_ps:
                group.next_edge_index += 1
                t += period
            only = [group]
            while t < t_end_ps:
                self.now_ps = t
                self._tick(only, t)
                group.next_edge_index += 1
                t += period
            self.now_ps = t_end_ps
            return
        # Min-heap of (edge_time, group_name); group names are unique.
        heap: list[tuple[int, str]] = []
        for name, group in sorted(self._groups.items()):
            t = group.clock.edge_time(group.next_edge_index)
            while t < self.now_ps:
                group.next_edge_index += 1
                t = group.clock.edge_time(group.next_edge_index)
            heapq.heappush(heap, (t, name))

        while heap and heap[0][0] < t_end_ps:
            now = heap[0][0]
            simultaneous: list[_DomainGroup] = []
            while heap and heap[0][0] == now:
                _, name = heapq.heappop(heap)
                simultaneous.append(self._groups[name])
            self.now_ps = now
            self._tick(simultaneous, now)
            for group in simultaneous:
                group.next_edge_index += 1
                heapq.heappush(
                    heap,
                    (group.clock.edge_time(group.next_edge_index),
                     group.clock.name))
        self.now_ps = t_end_ps

    def _tick(self, groups: list[_DomainGroup], now: int) -> None:
        try:
            for group in groups:
                cycle = group.next_edge_index
                for component in group.components:
                    component.compute(cycle, now)
            for group in groups:
                cycle = group.next_edge_index
                for component in group.components:
                    component.commit(cycle, now)
            for group in groups:
                for wire in group.wires:
                    wire.latch()
        except SimulationError as exc:
            raise SimulationError(f"t={now} ps: {exc}") from exc
        for watcher in self._watchers:
            watcher(now)

    # -- introspection -----------------------------------------------------------

    @property
    def clocks(self) -> tuple[ClockDomain, ...]:
        """All registered clock domains, sorted by name."""
        return tuple(g.clock for _, g in sorted(self._groups.items()))

    def __repr__(self) -> str:
        n_comp = sum(len(g.components) for g in self._groups.values())
        return (f"Engine({len(self._groups)} domains, {n_comp} components, "
                f"t={self.now_ps} ps)")
