"""Measurement infrastructure: latency, throughput and trace records.

Both simulators (the fast flit-level one and the detailed word-level one)
emit the same record types, so analyses and composability comparisons can
consume either.  All figures derive from two event logs:

* :class:`InjectionRecord` — a flit left its source NI in a given slot;
* :class:`DeliveryRecord` — a message's final word arrived at the
  destination NI.

:class:`ChannelStats` aggregates per-channel latency/throughput;
:class:`TraceRecorder` keeps exact per-flit timing for bit-identical
composability comparison (the paper's isolation claim is about *identical
timing*, not merely similar averages).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.exceptions import SimulationError

__all__ = ["InjectionRecord", "DeliveryRecord", "ChannelStats",
           "StatsCollector", "TraceRecorder", "LatencySummary",
           "latency_digest"]


def latency_digest(label: str, stats: "StatsCollector",
                   simulated_slots: int, slots_unit: str,
                   frequency_hz: float) -> str:
    """One-line latency summary shared by every simulator's result type.

    ``label`` names the producer (backend name); ``slots_unit`` is the
    producer's time-unit noun ("slots", "ticks").
    """
    count = stats.delivery_count()
    head = (f"{label}: {len(stats.channels)} channels, "
            f"{count} messages over {simulated_slots} "
            f"{slots_unit} @ {frequency_hz / 1e6:.0f} MHz")
    if not count:
        return head + ", no deliveries"
    s = LatencySummary.of(stats.all_latencies_ns())
    return (f"{head}; latency ns min={s.minimum:.1f} mean={s.mean:.1f} "
            f"p50={s.p50:.1f} p99={s.p99:.1f} max={s.maximum:.1f}")


@dataclass(slots=True)
class InjectionRecord:
    """One flit departure from a source NI.

    A plain mutable record: the simulators emit one per flit on the hot
    path, so construction cost matters more than immutability.
    """

    channel: str
    message_id: int
    sequence: int
    slot_index: int          # absolute slot count since reset
    cycle: int               # source-NI cycle of the first word
    time_ps: int             # wall-clock time of the first word


@dataclass(slots=True)
class DeliveryRecord:
    """Completion of one message at the destination NI.

    Mutable for the same hot-path reason as :class:`InjectionRecord`.
    """

    channel: str
    message_id: int
    created_cycle: int       # source-NI cycle the message became ready
    created_time_ps: int     # wall-clock equivalent
    delivered_cycle: int     # destination-NI cycle of the final word
    delivered_time_ps: int   # wall-clock time of the final word
    payload_bytes: int

    @property
    def latency_ps(self) -> int:
        """Message latency on the wall clock."""
        return self.delivered_time_ps - self.created_time_ps

    @property
    def latency_ns(self) -> float:
        """Message latency in nanoseconds."""
        return self.latency_ps / 1000.0


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of a latency population, in nanoseconds."""

    count: int
    minimum: float
    mean: float
    p50: float
    p99: float
    maximum: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The all-zero summary of a sample with no deliveries.

        >>> LatencySummary.empty().count
        0
        """
        return cls(count=0, minimum=0.0, mean=0.0, p50=0.0, p99=0.0,
                   maximum=0.0)

    @staticmethod
    def of(latencies_ns: Iterable[float]) -> "LatencySummary":
        """Summarise a latency sample.

        An empty sample degrades to :meth:`empty` (count 0, all-zero
        statistics) instead of raising — zero-delivery runs are a
        legitimate outcome of short horizons and fault scenarios, and
        digests must not blow up on them.

        >>> LatencySummary.of([]) == LatencySummary.empty()
        True
        """
        data = sorted(latencies_ns)
        if not data:
            return LatencySummary.empty()

        def pct(p: float) -> float:
            index = min(len(data) - 1, max(0, math.ceil(p * len(data)) - 1))
            return data[index]

        return LatencySummary(
            count=len(data), minimum=data[0],
            mean=sum(data) / len(data),
            p50=pct(0.50), p99=pct(0.99), maximum=data[-1])


@dataclass
class ChannelStats:
    """Per-channel aggregate measurements."""

    channel: str
    deliveries: list[DeliveryRecord] = field(default_factory=list)
    injections: list[InjectionRecord] = field(default_factory=list)

    @property
    def delivered_bytes(self) -> int:
        """Total payload bytes delivered."""
        return sum(r.payload_bytes for r in self.deliveries)

    def latency_summary(self) -> LatencySummary:
        """Latency order statistics over all delivered messages."""
        return LatencySummary.of(r.latency_ns for r in self.deliveries)

    def throughput_bytes_per_s(self, measured_from_ps: int,
                               measured_to_ps: int) -> float:
        """Delivered payload rate over an observation window.

        Counts messages delivered inside ``[measured_from_ps,
        measured_to_ps)``; use a window that starts after warm-up.
        """
        if measured_to_ps <= measured_from_ps:
            raise SimulationError("empty measurement window")
        window_bytes = sum(
            r.payload_bytes for r in self.deliveries
            if measured_from_ps <= r.delivered_time_ps < measured_to_ps)
        return window_bytes * 1e12 / (measured_to_ps - measured_from_ps)


class StatsCollector:
    """Shared sink for all simulation records."""

    def __init__(self):
        self._by_channel: dict[str, ChannelStats] = {}

    def record_injection(self, record: InjectionRecord) -> None:
        """Log one flit injection."""
        self._channel(record.channel).injections.append(record)

    def record_delivery(self, record: DeliveryRecord) -> None:
        """Log one message completion."""
        self._channel(record.channel).deliveries.append(record)

    def _channel(self, name: str) -> ChannelStats:
        stats = self._by_channel.get(name)
        if stats is None:
            stats = ChannelStats(name)
            self._by_channel[name] = stats
        return stats

    def channel(self, name: str) -> ChannelStats:
        """Stats of one channel (empty stats if nothing recorded).

        A pure read: querying a silent channel returns a transient empty
        view without registering it, so :attr:`channels` never grows
        from lookups.
        """
        stats = self._by_channel.get(name)
        return stats if stats is not None else ChannelStats(name)

    def sink(self, name: str) -> ChannelStats:
        """The *registered* stats of one channel, for hot-path appends.

        Unlike :meth:`channel` this inserts the channel, so simulators
        can cache the record lists and append directly; pair with
        :meth:`prune_empty` before handing the collector out.
        """
        return self._channel(name)

    def prune_empty(self) -> None:
        """Drop channels that never recorded anything.

        Simulators that pre-register every channel for hot-path appends
        call this before returning, so :attr:`channels` keeps its
        contract: only channels with at least one record appear.
        """
        self._by_channel = {
            name: stats for name, stats in self._by_channel.items()
            if stats.injections or stats.deliveries}

    @property
    def channels(self) -> tuple[str, ...]:
        """All channels with at least one record, sorted."""
        return tuple(sorted(self._by_channel))

    def all_deliveries(self) -> list[DeliveryRecord]:
        """Every delivery record across channels (stable order)."""
        out: list[DeliveryRecord] = []
        for name in self.channels:
            out.extend(self._by_channel[name].deliveries)
        return out

    def delivery_count(self) -> int:
        """Total messages delivered across channels.

        Subclasses backed by compiled schedule arrays answer this (and
        :meth:`all_latencies_ns`) without materialising records, so the
        one-line digests stay cheap on lazy collectors.
        """
        return sum(len(stats.deliveries)
                   for stats in self._by_channel.values())

    def all_latencies_ns(self) -> list[float]:
        """Every delivery latency, in :meth:`all_deliveries` order."""
        return [d.latency_ns for d in self.all_deliveries()]


class TraceRecorder:
    """Exact per-flit timing traces for composability comparison.

    A trace is, per channel, the ordered list of ``(message_id,
    injection_slot, delivery_cycle)`` triples.  Two runs are *composable-
    equal* for a channel set when their traces over those channels are
    identical — the strong, bit-level form of the paper's isolation claim.
    """

    def __init__(self):
        self._events: dict[str, list[tuple[int, int, int]]] = \
            defaultdict(list)

    def record(self, channel: str, message_id: int, injection_slot: int,
               delivery_cycle: int) -> None:
        """Append one flit/message event to a channel's trace."""
        self._events[channel].append(
            (message_id, injection_slot, delivery_cycle))

    def channel_sink(self, channel: str) -> list[tuple[int, int, int]]:
        """The mutable event list of one channel, for hot-path appends.

        Simulators may cache this list and append ``(message_id,
        injection_slot, delivery_cycle)`` tuples directly instead of
        paying a :meth:`record` call per delivery.
        """
        return self._events[channel]

    def trace(self, channel: str) -> tuple[tuple[int, int, int], ...]:
        """The immutable trace of one channel."""
        return tuple(self._events.get(channel, ()))

    def channels(self) -> tuple[str, ...]:
        """Channels with at least one event, sorted."""
        return tuple(sorted(self._events))

    def restricted_to(self, channels: Iterable[str]
                      ) -> dict[str, tuple[tuple[int, int, int], ...]]:
        """Traces of a subset of channels, keyed by channel."""
        return {ch: self.trace(ch) for ch in channels}

    @staticmethod
    def equal_on(a: "TraceRecorder", b: "TraceRecorder",
                 channels: Iterable[str]) -> bool:
        """True when both recorders agree exactly on ``channels``."""
        channels = list(channels)
        return a.restricted_to(channels) == b.restricted_to(channels)

    def first_divergence(self, other: "TraceRecorder", channels:
                         Iterable[str]) -> str | None:
        """Name of the first channel whose traces differ, or ``None``."""
        for ch in sorted(channels):
            if self.trace(ch) != other.trace(ch):
                return ch
        return None
