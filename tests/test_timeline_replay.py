"""Epoch-based timeline replay and dynamic composability.

The load-bearing claims:

* **Artifact validity** — a :class:`ReconfigurationTimeline` is a
  sequence of contention-free configurations: overlapping reservations,
  unbalanced start/stop pairs, and out-of-horizon events are rejected
  at construction;
* **Equivalence** — a one-epoch timeline run is bit-identical to the
  static simulator, and incremental schedule recompilation is
  bit-identical to a full per-epoch rebuild;
* **Dynamic composability** — on the flit-level TDM backend, survivors
  of a churn timeline produce bit-identical traces whether or not the
  churn happens (across >= 3 reconfiguration epochs), while the
  best-effort baseline demonstrably diverges under the same timeline;
* **Round trip** — the control plane's recorded churn replays through
  the simulators deterministically (byte-identical reports).
"""

from __future__ import annotations

import json

import pytest

from repro.core.allocation import SlotAllocator
from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.reconfiguration import ReconfigurationManager
from repro.core.timeline import (ReconfigurationTimeline, TimelineEvent,
                                 TimelineRecorder, replay_configuration)
from repro.service.churn import ChurnSpec, ChurnWorkload
from repro.service.controller import SessionService
from repro.simulation.backend import (BestEffortBackend,
                                      CycleAccurateBackend,
                                      FlitLevelBackend, SimRequest)
from repro.simulation.composability import (replay_traffic,
                                            run_with_channels,
                                            verify_timeline)
from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.traffic import Saturating
from repro.topology.builders import mesh
from repro.topology.mapping import Mapping


def _mesh_timeline(mesh_config, horizon=1000):
    """appX (c0, c1) runs throughout; appY (c2) churns mid-run."""
    alloc = mesh_config.allocation
    events = [
        TimelineEvent(0, "start", "appX",
                      (alloc.channel("c0"), alloc.channel("c1"))),
        TimelineEvent(300, "start", "appY", (alloc.channel("c2"),)),
        TimelineEvent(600, "stop", "appY"),
    ]
    return ReconfigurationTimeline(
        mesh_config.topology, events, horizon_slots=horizon,
        table_size=mesh_config.table_size,
        frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)


class TestTimelineArtifact:
    def test_event_validation(self, mesh_config):
        ca = mesh_config.allocation.channel("c0")
        with pytest.raises(ConfigurationError):
            TimelineEvent(-1, "start", "app", (ca,))
        with pytest.raises(ConfigurationError):
            TimelineEvent(0, "teleport", "app", (ca,))
        with pytest.raises(ConfigurationError):
            TimelineEvent(0, "start", "app")  # start without channels
        with pytest.raises(ConfigurationError):
            TimelineEvent(0, "stop", "app", (ca,))  # stop with channels

    def test_queries(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        assert timeline.channel_names == ("c0", "c1", "c2")
        assert timeline.n_epochs == 3
        assert timeline.epoch_boundaries() == (0, 300, 600)
        assert timeline.survivors() == ("c0", "c1")
        intervals = timeline.channel_intervals()
        assert intervals["c0"] == ((0, 1000,
                                    mesh_config.allocation.channel("c0")),)
        assert intervals["c2"][0][:2] == (300, 600)

    def test_change_plan(self, mesh_config):
        initial, changes = _mesh_timeline(mesh_config).change_plan()
        assert sorted(ca.spec.name for ca in initial) == ["c0", "c1"]
        assert [(slot, stops, tuple(ca.spec.name for ca in starts))
                for slot, stops, starts in changes] == \
            [(300, (), ("c2",)), (600, ("c2",), ())]

    def test_restriction_drops_churn(self, mesh_config):
        solo = _mesh_timeline(mesh_config).restricted_to(("c0", "c1"))
        assert solo.channel_names == ("c0", "c1")
        assert solo.n_epochs == 1
        assert solo.survivors() == ("c0", "c1")

    def test_contention_between_epoch_channels_rejected(self, mesh_config):
        """Two concurrently active channels must not share a link slot."""
        alloc = mesh_config.allocation
        c0 = alloc.channel("c0")
        clone = type(c0)(spec=ChannelSpec(
            "ghost", c0.spec.src_ip, c0.spec.dst_ip,
            c0.spec.throughput_bytes_per_s, application="ghost"),
            path=c0.path, slots=c0.slots)
        with pytest.raises(AllocationError):
            ReconfigurationTimeline(
                mesh_config.topology,
                [TimelineEvent(0, "start", "appX", (c0,)),
                 TimelineEvent(10, "start", "ghost", (clone,))],
                horizon_slots=100, table_size=mesh_config.table_size,
                frequency_hz=mesh_config.frequency_hz,
                fmt=mesh_config.fmt)
        # Sequential (non-overlapping) reuse of the same slots is legal.
        timeline = ReconfigurationTimeline(
            mesh_config.topology,
            [TimelineEvent(0, "start", "appX", (c0,)),
             TimelineEvent(10, "stop", "appX"),
             TimelineEvent(20, "start", "ghost", (clone,))],
            horizon_slots=100, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        assert timeline.n_epochs == 3

    def test_unbalanced_and_out_of_horizon_rejected(self, mesh_config):
        ca = mesh_config.allocation.channel("c0")
        make = lambda events: ReconfigurationTimeline(  # noqa: E731
            mesh_config.topology, events, horizon_slots=100,
            table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        with pytest.raises(ConfigurationError):
            make([TimelineEvent(0, "stop", "appX")])
        with pytest.raises(ConfigurationError):
            make([TimelineEvent(0, "start", "appX", (ca,)),
                  TimelineEvent(5, "start", "appX", (ca,))])
        with pytest.raises(ConfigurationError):
            make([TimelineEvent(100, "start", "appX", (ca,))])

    def test_to_record_is_json_stable(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        text = json.dumps(timeline.to_record(), sort_keys=True)
        again = json.dumps(_mesh_timeline(mesh_config).to_record(),
                           sort_keys=True)
        assert text == again


class TestRecorder:
    def test_fit_preserves_order_and_pairing(self, mesh_config):
        recorder = TimelineRecorder(
            mesh_config.topology, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        alloc = mesh_config.allocation
        recorder.record_start(0.0, "appX", (alloc.channel("c0"),
                                            alloc.channel("c1")))
        recorder.record_start(0.010, "appY", (alloc.channel("c2"),))
        recorder.record_stop(0.020, "appY")
        timeline = recorder.build(horizon_slots=1000)
        assert timeline.n_epochs == 3
        assert timeline.survivors() == ("c0", "c1")
        # fit lands the last transition at fill * horizon.
        assert timeline.epoch_boundaries()[-1] == 750

    def test_zero_length_session_dropped_not_crashed(self, mesh_config):
        """Fit-compression may land a session's open and close on the
        same slot; such a zero-length session influences no epoch and
        must be dropped, not trip the stop-before-start ordering."""
        alloc = mesh_config.allocation
        recorder = TimelineRecorder(
            mesh_config.topology, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        recorder.record_start(0.0, "appX", (alloc.channel("c0"),))
        recorder.record_start(1.0, "blip", (alloc.channel("c2"),))
        recorder.record_stop(1.0001, "blip")  # << one slot at this fit
        recorder.record_stop(2.0, "appX")
        timeline = recorder.build(horizon_slots=1000)
        assert "c2" not in timeline.channel_names
        assert timeline.channel_names == ("c0",)

    def test_fill_one_keeps_the_final_transition(self, mesh_config):
        """fill=1.0 must clamp float wobble instead of silently
        dropping the last transition (which would fake a survivor)."""
        alloc = mesh_config.allocation
        recorder = TimelineRecorder(
            mesh_config.topology, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        recorder.record_start(0.0, "appX", (alloc.channel("c0"),))
        recorder.record_start(0.005, "appY", (alloc.channel("c2"),))
        recorder.record_stop(0.020, "appY")
        timeline = recorder.build(horizon_slots=1000, fill=1.0)
        assert timeline.survivors() == ("c0",)
        assert timeline.epoch_boundaries()[-1] == 999

    def test_out_of_order_times_rejected(self, mesh_config):
        recorder = TimelineRecorder(
            mesh_config.topology, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz)
        recorder.record_stop(1.0, "a")  # pairing checked at build time
        with pytest.raises(ConfigurationError):
            recorder.record_stop(0.5, "b")

    def test_manager_emits_timeline(self, mesh_config):
        recorder = TimelineRecorder(
            mesh_config.topology, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        allocator = SlotAllocator(
            mesh_config.topology, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        manager = ReconfigurationManager(allocator, mesh_config.mapping,
                                         recorder=recorder)
        use_case = mesh_config.use_case
        manager.start_application(use_case.application("appX"), at_s=0.0)
        manager.start_application(use_case.application("appY"),
                                  at_s=0.010)
        manager.stop_application("appY", at_s=0.020)
        assert recorder.n_transitions == 3
        timeline = recorder.build(horizon_slots=800)
        assert timeline.survivors() == ("c0", "c1")
        assert timeline.n_epochs == 3

    def test_replay_configuration_carrier(self, mesh_config):
        config = replay_configuration(_mesh_timeline(mesh_config))
        assert config.topology is mesh_config.topology
        assert config.table_size == mesh_config.table_size
        assert not config.allocation.channels


class TestEpochExecution:
    def test_single_epoch_equals_static_run(self, mesh_config):
        """The static simulator is the one-epoch special case."""
        alloc = mesh_config.allocation
        timeline = ReconfigurationTimeline(
            mesh_config.topology,
            [TimelineEvent(0, "start", "appX",
                           (alloc.channel("c0"), alloc.channel("c1"))),
             TimelineEvent(0, "start", "appY", (alloc.channel("c2"),))],
            horizon_slots=800, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        traffic = replay_traffic(timeline)
        static_sim = FlitLevelSimulator(mesh_config)
        for name, pattern in traffic.items():
            static_sim.set_traffic(name, pattern)
        static = static_sim.run(800)
        dynamic = FlitLevelSimulator(mesh_config).run_timeline(
            timeline, traffic=traffic)
        assert dynamic.n_epochs == 1
        for name in timeline.channel_names:
            assert static.trace.trace(name) == dynamic.trace.trace(name)

    def test_incremental_equals_full_rebuild(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        traffic = replay_traffic(timeline)
        results = {
            mode: FlitLevelSimulator(mesh_config).run_timeline(
                timeline, traffic=traffic, incremental=mode == "inc")
            for mode in ("inc", "full")}
        assert results["inc"].n_epochs == results["full"].n_epochs == 3
        for name in timeline.channel_names:
            assert results["inc"].trace.trace(name) == \
                results["full"].trace.trace(name)
        assert results["inc"].flits_by_channel == \
            results["full"].flits_by_channel

    def test_churning_channel_only_lives_inside_its_epochs(
            self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        result = FlitLevelSimulator(mesh_config).run_timeline(
            timeline, traffic=replay_traffic(timeline))
        slots = [slot for _, slot, _ in result.trace.trace("c2")]
        assert slots, "churn channel should have delivered messages"
        assert min(slots) >= 300
        assert max(slots) < 600

    def test_contention_check_holds_across_epochs(self, mesh_config):
        sim = FlitLevelSimulator(mesh_config, check_contention=True)
        timeline = _mesh_timeline(mesh_config)
        sim.run_timeline(timeline, traffic=replay_traffic(timeline))

    def test_flow_control_supported_across_epochs(self, mesh_config):
        sim = FlitLevelSimulator(mesh_config, flow_control=True)
        timeline = _mesh_timeline(mesh_config)
        result = sim.run_timeline(timeline,
                                  traffic=replay_traffic(timeline))
        assert result.flits_by_channel["c0"] > 0

    def test_restart_does_not_inherit_stale_credits(self, mesh_config):
        """Credit returns in flight when a channel stops must not top up
        its restarted incarnation: the restart behaves exactly like a
        brand-new channel with the same allocation."""
        alloc = mesh_config.allocation
        c2 = alloc.channel("c2")
        ghost = type(c2)(spec=ChannelSpec(
            "ghost", c2.spec.src_ip, c2.spec.dst_ip,
            c2.spec.throughput_bytes_per_s, application="ghost"),
            path=c2.path, slots=c2.slots)

        def make(second):
            app, ca = ("appY", c2) if second == "c2" else ("ghost", ghost)
            return ReconfigurationTimeline(
                mesh_config.topology,
                [TimelineEvent(0, "start", "appY", (c2,)),
                 TimelineEvent(100, "stop", "appY"),
                 TimelineEvent(102, "start", app, (ca,))],
                horizon_slots=600, table_size=mesh_config.table_size,
                frequency_hz=mesh_config.frequency_hz,
                fmt=mesh_config.fmt)

        saturating = Saturating(mesh_config.fmt.payload_words_per_flit,
                                mesh_config.fmt.flit_size)
        flits = {}
        for second in ("c2", "ghost"):
            timeline = make(second)
            sim = FlitLevelSimulator(mesh_config, flow_control=True,
                                     rx_buffer_words=2)
            result = sim.run_timeline(
                timeline,
                traffic={name: saturating
                         for name in timeline.channel_names})
            flits[second] = result.flits_by_channel
        # The restarted incarnation's share equals what an identically
        # allocated fresh channel achieves from the same slot.
        restart_share = flits["c2"]["c2"] - flits["ghost"]["c2"]
        assert restart_share == flits["ghost"]["ghost"]

    def test_be_arrival_in_final_slot_dropped_at_stop(self, mesh_config):
        """A message maturing exactly at the stop boundary belongs to
        the stopped session and must not be injected (the flit-level
        simulator drops the same arrival with the schedule row)."""
        from repro.baseline.be_network import BeNetworkSimulator
        from repro.simulation.traffic import ConstantBitRate
        alloc = mesh_config.allocation
        timeline = ReconfigurationTimeline(
            mesh_config.topology,
            [TimelineEvent(0, "start", "appY", (alloc.channel("c2"),)),
             TimelineEvent(2, "stop", "appY")],
            horizon_slots=50, table_size=mesh_config.table_size,
            frequency_hz=mesh_config.frequency_hz, fmt=mesh_config.fmt)
        # flit_size=3: events at cycles 0 and 5; cycle 5 matures at
        # tick ceil(5/3)=2 == stop and must be dropped.
        pattern = ConstantBitRate(1, 5.0)
        result = BeNetworkSimulator(mesh_config).run_timeline(
            timeline, traffic={"c2": pattern})
        injected = {r.message_id
                    for r in result.stats.channel("c2").injections}
        assert injected == {0}

    def test_timeline_request_validation(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        with pytest.raises(ConfigurationError):
            SimRequest(n_slots=timeline.horizon_slots + 1,
                       timeline=timeline)
        backend = FlitLevelBackend(mesh_config)
        bad_traffic = {"ghost": next(iter(
            replay_traffic(timeline).values()))}
        with pytest.raises(ConfigurationError):
            backend.run(SimRequest(n_slots=100, timeline=timeline,
                                   traffic=bad_traffic))
        with pytest.raises(ConfigurationError):
            CycleAccurateBackend(mesh_config).run(
                SimRequest(n_slots=100, timeline=timeline))
        with pytest.raises(ConfigurationError):
            FlitLevelBackend(mesh_config, recompile="psychic")

    def test_backend_meta_reports_epochs(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        result = FlitLevelBackend(mesh_config).run(SimRequest(
            n_slots=timeline.horizon_slots,
            traffic=replay_traffic(timeline), timeline=timeline))
        assert result.meta["n_epochs"] == 3
        assert result.meta["recompile"] == "incremental"


class TestDynamicComposability:
    def test_flit_survivors_identical_across_epochs(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        report = verify_timeline(timeline, replay_traffic(timeline))
        assert report.backend == "flit"
        assert report.n_epochs == 3
        assert report.survivors == ("c0", "c1")
        assert report.is_composable
        assert report.diverged == ()

    def test_be_baseline_diverges_under_churn(self):
        """Converging wormhole channels couple on shared buffers/ports."""
        topo = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
        channels = (
            ChannelSpec("sA", "ipA", "ipD", 120 * MB, application="appA"),
            ChannelSpec("sB", "ipB", "ipD", 120 * MB, application="appB"),
        )
        use_case = UseCase("conv", (Application("appA", channels[:1]),
                                    Application("appB", channels[1:])))
        mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0",
                           "ipD": "ni1_1_0"})
        config = configure(topo, use_case, table_size=8,
                           frequency_hz=500e6, mapping=mapping)
        alloc = config.allocation
        timeline = ReconfigurationTimeline(
            topo,
            [TimelineEvent(0, "start", "appA", (alloc.channel("sA"),)),
             TimelineEvent(200, "start", "appB", (alloc.channel("sB"),)),
             TimelineEvent(800, "stop", "appB")],
            horizon_slots=1200, table_size=8, frequency_hz=500e6,
            fmt=config.fmt)
        # Saturate the shared output port so arbitration must interleave.
        traffic = {name: Saturating(config.fmt.payload_words_per_flit,
                                    config.fmt.flit_size)
                   for name in ("sA", "sB")}
        flit = verify_timeline(timeline, traffic)
        assert flit.is_composable
        be = verify_timeline(timeline, traffic,
                             backend_factory=BestEffortBackend)
        assert be.survivors == ("sA",)
        assert be.diverged == ("sA",)
        assert not be.is_composable

    def test_explicit_survivors_validated(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        with pytest.raises(ValueError):
            verify_timeline(timeline, replay_traffic(timeline),
                            survivors=("ghost",))

    def test_truncated_window_survivors_and_epochs(self, mesh_config):
        """n_slots < horizon: survivors and epoch count reflect the
        simulated window, not the full timeline."""
        timeline = _mesh_timeline(mesh_config)  # c2 stops at 600
        report = verify_timeline(timeline, replay_traffic(timeline),
                                 n_slots=500)
        # c2 is still running when the truncated run ends.
        assert report.survivors == ("c0", "c1", "c2")
        assert report.n_epochs == 2  # boundary 600 was never simulated
        assert report.is_composable

    def test_verdict_record_is_deterministic(self, mesh_config):
        timeline = _mesh_timeline(mesh_config)
        traffic = replay_traffic(timeline)
        first = verify_timeline(timeline, traffic).to_record()
        second = verify_timeline(timeline, traffic).to_record()
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)


class TestServiceRoundTrip:
    def _service_timeline(self, n_events=120, horizon=1200):
        topology = mesh(3, 3, nis_per_router=2)
        workload = ChurnWorkload(ChurnSpec(n_sessions=n_events // 2 + 8),
                                 topology, seed=7)
        service = SessionService(topology, table_size=32,
                                 frequency_hz=500e6,
                                 record_events=False,
                                 record_timeline=True)
        service.run(workload.events(limit=n_events))
        return service.timeline(horizon_slots=horizon)

    def test_recorded_churn_is_composable_on_flit(self):
        timeline = self._service_timeline()
        assert timeline.n_epochs >= 3
        report = verify_timeline(timeline, replay_traffic(timeline))
        assert report.survivors
        assert report.is_composable

    def test_timeline_requires_recording(self):
        topology = mesh(2, 2, nis_per_router=1)
        service = SessionService(topology)
        with pytest.raises(ConfigurationError):
            service.timeline(horizon_slots=100)

    def test_round_trip_deterministic(self):
        a = self._service_timeline().to_record()
        b = self._service_timeline().to_record()
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)


class TestSatellites:
    def test_run_with_channels_rejects_conflicting_flow_control(
            self, mesh_config):
        traffic = {}
        with pytest.raises(ValueError):
            run_with_channels(mesh_config, traffic, set(), 10,
                              flow_control=True,
                              backend_factory=BestEffortBackend)
        # Either option alone stays legal.
        run_with_channels(mesh_config, traffic, set(), 10,
                          flow_control=True)
        run_with_channels(mesh_config, traffic, set(), 10,
                          backend_factory=BestEffortBackend)


class TestReplayDemo:
    def test_demo_round_trip(self):
        from repro.simulation.replay import run_replay_demo
        record, report_json, identical = run_replay_demo(
            n_events=80, n_slots=800, seed=11)
        assert identical
        verdicts = record["verdicts"]
        assert verdicts["flit"]["composable"]
        assert verdicts["flit"]["n_survivors"] >= 1
        assert verdicts["flit"]["n_epochs"] >= 3
        # The canonical JSON parses back to the record.
        assert json.loads(report_json) == json.loads(
            json.dumps(record, sort_keys=True))
