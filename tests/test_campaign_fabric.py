"""Campaign fabric: sharding, checkpointing, resume, work stealing.

The contract under test is byte-determinism against every scheduling
accident the fabric is built to absorb: worker counts, batch and steal
order, SIGKILLed workers, a SIGKILLed parent resumed from its
journals, and runs that crash inside a worker.  Every path must
reproduce the serial report byte for byte.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.fabric import (CampaignWorkdir, ShardJournal,
                                   default_shard_size, iter_report_chunks,
                                   shard_campaign, spec_fingerprint)
from repro.campaign.presets import synthetic_campaign
from repro.campaign.runner import CampaignResult, CampaignRunner
from repro.campaign.spec import (CampaignSpec, ScenarioSpec, SyntheticSpec,
                                 derive_seed)
from repro.core.exceptions import ConfigurationError


def _grid(n_scenarios=6, seeds=(1, 2), work=20, fail_seeds=()):
    return synthetic_campaign(n_scenarios=n_scenarios, seeds=seeds,
                              work=work, fail_seeds=fail_seeds)


class TestSharding:
    def test_shards_partition_the_sorted_run_list(self):
        spec = _grid(n_scenarios=5, seeds=(1, 2, 3))
        shards = shard_campaign(spec, shard_size=4)
        run_ids = [run_id for shard in shards for run_id in shard.run_ids]
        assert run_ids == sorted(r.run_id for r in spec.expand())
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_shard_ids_derive_from_run_keys_not_declaration_order(self):
        # The same scenario set declared in reverse yields the same
        # shards: ids hash the sorted run keys, not enumeration order.
        scenarios = tuple(
            ScenarioSpec(name=f"synth-{i:04d}", mode="synthetic",
                         synthetic=SyntheticSpec(work=1))
            for i in range(6))
        fwd = CampaignSpec(name="s", scenarios=scenarios, seeds=(1, 2))
        rev = CampaignSpec(name="s", scenarios=scenarios[::-1],
                           seeds=(1, 2))
        assert shard_campaign(fwd, shard_size=5) == \
            shard_campaign(rev, shard_size=5)
        assert spec_fingerprint(fwd) == spec_fingerprint(rev)

    @settings(max_examples=25, deadline=None)
    @given(n_runs=st.integers(1, 3_000_000))
    def test_default_shard_size_is_pure_and_bounded(self, n_runs):
        size = default_shard_size(n_runs)
        assert size == default_shard_size(n_runs)  # pure in n_runs
        assert 1 <= size <= 512

    @settings(max_examples=20, deadline=None)
    @given(n_scenarios=st.integers(1, 7), n_seeds=st.integers(1, 4),
           shard_size=st.integers(1, 10))
    def test_shard_ids_stable_across_expansions(self, n_scenarios,
                                                n_seeds, shard_size):
        spec = _grid(n_scenarios=n_scenarios,
                     seeds=tuple(range(1, n_seeds + 1)))
        first = shard_campaign(spec, shard_size=shard_size)
        again = shard_campaign(spec, shard_size=shard_size)
        assert first == again
        assert sum(s.n_runs for s in first) == n_scenarios * n_seeds


class TestDeterminism:
    def test_report_bytes_independent_of_worker_count(self, tmp_path):
        spec = _grid(n_scenarios=6, seeds=(1, 2, 3))
        reference = CampaignRunner(spec, workers=1).run().to_json()
        for workers in (2, 3, 5):
            result = CampaignRunner(
                spec, workers=workers,
                workdir=tmp_path / f"wd{workers}").run()
            assert result.to_json() == reference

    def test_report_bytes_survive_steals(self):
        # A grid engineered so idle workers must steal: a tail batch of
        # slow runs (sorted last) while every other run is instant.
        scenarios = tuple(
            ScenarioSpec(name=f"synth-{i:04d}", mode="synthetic",
                         synthetic=SyntheticSpec(work=0))
            for i in range(24)) + tuple(
            ScenarioSpec(name=f"zz-slow-{i}", mode="synthetic",
                         synthetic=SyntheticSpec(work=60_000))
            for i in range(4))
        spec = CampaignSpec(name="steal", scenarios=scenarios,
                            seeds=(1, 2))
        reference = CampaignRunner(spec, workers=1).run().to_json()
        result = CampaignRunner(spec, workers=4).run()
        assert result.to_json() == reference
        dispatch = result.meta["dispatch"]
        # Stolen work may double-complete; dedup keeps one record.
        assert dispatch["duplicates"] >= 0
        assert result.n_runs == len(scenarios) * 2

    def test_streaming_report_matches_json_dumps(self, tmp_path):
        spec = _grid(n_scenarios=4, seeds=(1, 2), fail_seeds=(2,))
        result = CampaignRunner(spec, workers=2, workdir=tmp_path / "wd",
                                keep_records=False).run()
        expected = json.dumps(
            {"campaign": result.campaign, "base_seed": result.base_seed,
             "n_runs": result.n_runs, "n_failed": result.n_failed,
             "records": list(result.iter_records())},
            indent=2, sort_keys=True)
        assert result.to_json() == expected
        assert result.records == []

    def test_iter_report_chunks_equals_json_dumps(self):
        records = [{"run_id": f"r{i}", "status": "ok",
                    "nested": {"b": [1, 2], "a": None}}
                   for i in range(3)]
        chunks = "".join(iter_report_chunks("c", 7, 3, 0, iter(records)))
        assert chunks == json.dumps(
            {"campaign": "c", "base_seed": 7, "n_runs": 3, "n_failed": 0,
             "records": records}, indent=2, sort_keys=True)


class TestCheckpointResume:
    def test_resume_skips_journaled_runs_and_matches_serial(self,
                                                            tmp_path):
        spec = _grid(n_scenarios=6, seeds=(1, 2))
        serial = CampaignRunner(spec, workers=1).run().to_json()
        wd = tmp_path / "wd"
        shards = shard_campaign(spec,
                                shard_size=default_shard_size(12))
        # Simulate a killed campaign: initialise the workdir and
        # journal only the first shard's runs, then resume.
        workdir = CampaignWorkdir(wd)
        workdir.initialise(spec, shards, default_shard_size(12))
        runs = {r.run_id: r for r in spec.expand()}
        from repro.campaign.runner import _safe_execute_run
        for run_id in shards[0].run_ids:
            workdir.append(shards[0].shard_id,
                           _safe_execute_run(runs[run_id]))
        workdir.close()
        resumed = CampaignRunner(spec, workers=2, workdir=wd,
                                 resume=True).run()
        assert resumed.to_json() == serial
        assert resumed.meta["resume"]["n_resumed"] == \
            len(shards[0].run_ids)

    def test_resume_of_complete_campaign_is_a_noop(self, tmp_path):
        spec = _grid()
        wd = tmp_path / "wd"
        first = CampaignRunner(spec, workers=2, workdir=wd).run()
        again = CampaignRunner(spec, workers=2, workdir=wd,
                               resume=True).run()
        assert again.to_json() == first.to_json()
        assert again.meta["resume"]["n_resumed"] == first.n_runs
        assert again.meta["worker_table"] == {}

    def test_resume_tolerates_corrupt_journal_lines(self, tmp_path):
        spec = _grid(n_scenarios=4, seeds=(1,))
        wd = tmp_path / "wd"
        serial = CampaignRunner(spec, workers=1, workdir=wd).run()
        journal = next((wd / "shards").glob("*.jsonl"))
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"truncated mid-wri')
        resumed = CampaignRunner(spec, workers=1, workdir=wd,
                                 resume=True).run()
        assert resumed.to_json() == serial.to_json()

    def test_existing_manifest_without_resume_refuses(self, tmp_path):
        spec = _grid()
        wd = tmp_path / "wd"
        CampaignRunner(spec, workers=1, workdir=wd).run()
        with pytest.raises(ConfigurationError, match="resume"):
            CampaignRunner(spec, workers=1, workdir=wd).run()

    def test_resume_rejects_a_different_campaign(self, tmp_path):
        wd = tmp_path / "wd"
        CampaignRunner(_grid(n_scenarios=3), workers=1,
                       workdir=wd).run()
        with pytest.raises(ConfigurationError, match="fingerprint"):
            CampaignRunner(_grid(n_scenarios=4), workers=1, workdir=wd,
                           resume=True).run()

    def test_streaming_needs_a_workdir(self):
        with pytest.raises(ConfigurationError, match="workdir"):
            CampaignRunner(_grid(), keep_records=False)

    def test_resume_needs_a_workdir(self):
        with pytest.raises(ConfigurationError, match="workdir"):
            CampaignRunner(_grid(), resume=True)


class TestCrashResilience:
    def test_sigkilled_worker_requeues_and_report_matches(self):
        spec = _grid(n_scenarios=10, seeds=tuple(range(1, 11)),
                     work=8_000)
        serial = CampaignRunner(spec, workers=1).run().to_json()
        runner = CampaignRunner(spec, workers=3)
        box: dict[str, object] = {}

        def execute():
            box["result"] = runner.run()

        thread = threading.Thread(target=execute)
        thread.start()
        deadline = time.time() + 30.0
        killed = False
        while not killed and time.time() < deadline:
            pids = runner.worker_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                killed = True
            time.sleep(0.005)
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        result = box["result"]
        assert killed
        assert result.to_json() == serial
        assert result.meta["dispatch"]["worker_deaths"] >= 1

    def test_all_workers_dead_falls_back_in_process(self):
        spec = _grid(n_scenarios=8, seeds=tuple(range(1, 9)),
                     work=12_000)
        serial = CampaignRunner(spec, workers=1).run().to_json()
        runner = CampaignRunner(spec, workers=2)
        box: dict[str, object] = {}

        def execute():
            box["result"] = runner.run()

        thread = threading.Thread(target=execute)
        thread.start()
        killed: set[int] = set()
        deadline = time.time() + 30.0
        while len(killed) < 2 and time.time() < deadline:
            for pid in runner.worker_pids():
                if pid not in killed:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    killed.add(pid)
            time.sleep(0.005)
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert box["result"].to_json() == serial

    def test_sigkilled_parent_resumes_byte_identical(self, tmp_path):
        spec_args = "n_scenarios=20, seeds=tuple(range(1, 21)), work=3000"
        wd = tmp_path / "wd"
        script = (
            "from repro.campaign.presets import synthetic_campaign\n"
            "from repro.campaign.runner import CampaignRunner\n"
            f"spec = synthetic_campaign({spec_args})\n"
            f"CampaignRunner(spec, workers=2, workdir={str(wd)!r}).run()\n")
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            deadline = time.time() + 60.0
            journaled = 0
            while time.time() < deadline and proc.poll() is None:
                journaled = sum(
                    1 for journal in (wd / "shards").glob("*.jsonl")
                    for line in open(journal, encoding="utf-8")
                    if line.strip()
                ) if (wd / "shards").is_dir() else 0
                if journaled >= 3:
                    break
                time.sleep(0.01)
            mid_flight = proc.poll() is None and journaled >= 3
        finally:
            proc.kill()
            proc.wait(timeout=30.0)
        assert mid_flight, "campaign finished before the SIGKILL landed"
        spec = synthetic_campaign(n_scenarios=20,
                                  seeds=tuple(range(1, 21)), work=3000)
        serial = CampaignRunner(spec, workers=1).run().to_json()
        resumed = CampaignRunner(spec, workers=2, workdir=wd,
                                 resume=True).run()
        assert resumed.to_json() == serial
        assert 0 < resumed.meta["resume"]["n_resumed"] < 400


class TestGracefulDegradation:
    def test_crashed_run_is_enveloped_not_poisoning(self, tmp_path):
        spec = _grid(n_scenarios=8, seeds=(1, 2, 3), fail_seeds=(2,))
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=3).run()
        assert parallel.to_json() == serial.to_json()
        crashed = [r for r in serial.records if r["status"] == "crashed"]
        assert len(crashed) == 8          # one per scenario at seed 2
        assert serial.n_failed == 8
        for record in crashed:
            assert record["error"].startswith("RuntimeError")
            assert len(record["traceback_digest"]) == 16
        # Batch mates of the crashed runs all completed normally.
        ok = [r for r in serial.records if r["status"] == "ok"]
        assert len(ok) == serial.n_runs - 8

    def test_failure_accounting_identical_in_streaming_mode(self,
                                                            tmp_path):
        spec = _grid(n_scenarios=5, seeds=(1, 2), fail_seeds=(1,))
        keep = CampaignRunner(spec, workers=2).run()
        stream = CampaignRunner(spec, workers=2,
                                workdir=tmp_path / "wd",
                                keep_records=False).run()
        assert stream.n_failed == keep.n_failed == 5
        assert stream.n_runs == keep.n_runs
        assert stream.summary_rows() == keep.summary_rows()
        assert stream.to_json() == keep.to_json()
        assert stream.digest() == keep.digest()


class TestSummary:
    def test_one_liner_counts_crashes_and_names_stragglers(self):
        result = CampaignResult(
            campaign="demo", base_seed=7,
            records=[
                {"run": "a/s1", "status": "ok"},
                {"run": "a/s2", "status": "crashed", "error": "boom"},
                {"run": "b/s1", "status": "ok"},
            ],
            meta={"stragglers": [
                {"run_id": "a/s2", "wall_s": 4.0, "median_s": 0.5},
                {"run_id": "b/s1", "wall_s": 9.0, "median_s": 0.5},
            ]})
        line = result.summary(top_k=1)
        assert line.startswith("campaign[demo]: 3 runs, 1 failed")
        assert "crashed=1" in line and "ok=2" in line
        # Only the slowest straggler survives top_k=1, ratio included.
        assert "b/s1 9.00s (18.0x median)" in line
        assert "a/s2 4.00s" not in line

    def test_summary_matches_between_record_and_streaming_modes(self,
                                                                tmp_path):
        spec = _grid(n_scenarios=4, seeds=(1, 2), fail_seeds=(2,))
        keep = CampaignRunner(spec, workers=1).run()
        stream = CampaignRunner(spec, workers=1,
                                workdir=tmp_path / "wd",
                                keep_records=False).run()
        assert "crashed=4" in keep.summary()
        # Straggler content is wall-clock (meta), so compare only the
        # deterministic head of the line.
        head = keep.summary().split("; stragglers")[0]
        assert stream.summary().split("; stragglers")[0] == head


class TestJournal:
    def test_journal_first_write_wins_on_duplicates(self, tmp_path):
        journal = ShardJournal(tmp_path / "s.jsonl")
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"run_id": "a", "status": "ok"}))
            handle.write("\n")
            handle.write(json.dumps({"run_id": "a", "status": "dup"}))
            handle.write("\n")
        assert journal.load() == {"a": {"run_id": "a", "status": "ok"}}

    def test_scenario_context_not_pickled_per_run(self):
        # The per-batch payload is compact triples; a worker rebuilds
        # RunSpecs from its interned scenario library.  Guard the
        # derived seed path that rebuild depends on.
        spec = _grid(n_scenarios=2, seeds=(5,))
        run = spec.expand()[0]
        assert run.run_seed == derive_seed(spec.base_seed, run.run_id)
