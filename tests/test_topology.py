"""Unit tests for the topology graph, builders, mapping and routing."""

from __future__ import annotations

import pytest

from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import TopologyError
from repro.core.path import make_path
from repro.core.words import WordFormat
from repro.topology.builders import (concentrated_mesh, custom, line, mesh,
                                     ring, router_coords, single_router,
                                     torus)
from repro.topology.graph import Link, NodeKind, Topology
from repro.topology.mapping import (Mapping, communication_clustered,
                                    round_robin, traffic_balanced)
from repro.topology.routing import (candidate_paths, k_shortest_paths,
                                    weighted_shortest_path, xy_path,
                                    xy_route)


class TestTopologyGraph:
    def test_connect_assigns_sequential_ports(self):
        topo = Topology()
        topo.add_router("r0")
        topo.add_router("r1")
        topo.add_router("r2")
        l1 = topo.connect("r0", "r1")
        l2 = topo.connect("r0", "r2")
        assert (l1.src_port, l2.src_port) == (0, 1)

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_router("r0")
        with pytest.raises(TopologyError):
            topo.add_ni("r0")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_router("a")
        topo.add_router("b")
        topo.connect("a", "b")
        with pytest.raises(TopologyError):
            topo.connect("a", "b")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_router("a")
        with pytest.raises(TopologyError):
            topo.connect("a", "a")

    def test_ni_to_ni_rejected(self):
        topo = Topology()
        topo.add_ni("n0")
        topo.add_ni("n1")
        with pytest.raises(TopologyError):
            topo.connect("n0", "n1")

    def test_ni_single_port(self):
        topo = Topology()
        topo.add_ni("n")
        topo.add_router("r0")
        topo.add_router("r1")
        topo.connect("n", "r0")
        with pytest.raises(TopologyError):
            topo.connect("n", "r1")

    def test_arity(self):
        topo = mesh(2, 2, nis_per_router=1)
        # Corner router: 2 mesh neighbours + 1 NI = arity 3.
        assert topo.arity("r0_0") == 3

    def test_attached_router(self):
        topo = mesh(2, 1, nis_per_router=2)
        assert topo.attached_router("ni0_0_1") == "r0_0"

    def test_nis_of_router(self):
        topo = mesh(2, 1, nis_per_router=2)
        assert topo.nis_of_router("r1_0") == ("ni1_0_0", "ni1_0_1")

    def test_neighbor_on_port_inverse(self):
        topo = mesh(2, 2, nis_per_router=1)
        for link in topo.links:
            if topo.kind(link.src) is NodeKind.ROUTER:
                assert topo.neighbor_on_port(link.src,
                                             link.src_port) == link.dst

    def test_validation_catches_dangling_ni(self):
        topo = Topology()
        topo.add_router("r")
        topo.add_ni("n")
        topo.connect("n", "r")  # missing reverse direction
        with pytest.raises(TopologyError):
            topo.validate()

    def test_dict_roundtrip(self):
        topo = mesh(3, 2, nis_per_router=2, pipeline_stages=1)
        clone = Topology.from_dict(topo.to_dict())
        assert clone.routers == topo.routers
        assert clone.nis == topo.nis
        assert clone.links == topo.links

    def test_set_pipeline_stages(self):
        topo = mesh(2, 1, nis_per_router=1)
        updated = topo.set_pipeline_stages("r0_0", "r1_0", 3)
        assert updated.pipeline_stages == 3
        assert topo.link("r0_0", "r1_0").pipeline_stages == 3


class TestBuilders:
    def test_mesh_counts(self):
        topo = mesh(4, 3, nis_per_router=4)
        assert len(topo.routers) == 12
        assert len(topo.nis) == 48
        # 17 mesh edges * 2 directions + 48 NIs * 2 directions.
        assert len(topo.links) == 17 * 2 + 48 * 2

    def test_concentrated_mesh_is_paper_topology(self):
        topo = concentrated_mesh(4, 3)
        assert len(topo.nis) == 48
        # Interior router: 4 neighbours + 4 NIs = arity 8.
        assert topo.arity("r1_1") == 8

    def test_line(self):
        topo = line(4)
        assert len(topo.routers) == 4
        assert topo.has_link("r0_0", "r1_0")
        assert not topo.has_link("r0_0", "r2_0")

    def test_ring_wraps(self):
        topo = ring(5)
        assert topo.has_link("r4_0", "r0_0")
        assert topo.has_link("r0_0", "r4_0")

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_torus_wraps_both_dimensions(self):
        topo = torus(3, 3)
        assert topo.has_link("r2_0", "r0_0")
        assert topo.has_link("r0_2", "r0_0")

    def test_single_router(self):
        topo = single_router(3)
        assert len(topo.routers) == 1
        assert len(topo.nis) == 3

    def test_custom(self):
        topo = custom([("a", "b"), ("b", "a")],
                      [("n0", "a"), ("n1", "b")])
        assert topo.routers == ("a", "b")
        assert topo.attached_router("n0") == "a"

    def test_router_coords(self):
        topo = mesh(3, 2)
        assert router_coords(topo, "r2_1") == (2, 1)

    def test_pipeline_stages_on_router_links_only(self):
        topo = mesh(2, 2, nis_per_router=1, pipeline_stages=2)
        assert topo.link("r0_0", "r1_0").pipeline_stages == 2
        assert topo.link("ni0_0_0", "r0_0").pipeline_stages == 0


class TestRouting:
    def test_xy_route_goes_x_first(self):
        topo = mesh(3, 3)
        route = xy_route(topo, "r0_0", "r2_2")
        assert route == ["r0_0", "r1_0", "r2_0", "r2_1", "r2_2"]

    def test_xy_path_endpoints(self):
        topo = mesh(3, 3, nis_per_router=1)
        path = xy_path(topo, "ni0_0_0", "ni2_2_0")
        assert path.source == "ni0_0_0"
        assert path.dest == "ni2_2_0"
        assert path.n_routers == 5

    def test_k_shortest_ordered_by_length(self):
        topo = mesh(3, 3, nis_per_router=1)
        paths = k_shortest_paths(topo, "ni0_0_0", "ni2_2_0", k=3)
        lengths = [p.n_routers for p in paths]
        assert lengths == sorted(lengths)
        assert lengths[0] == 5

    def test_same_router_path(self):
        topo = single_router(2)
        paths = k_shortest_paths(topo, "ni0_0_0", "ni0_0_1", k=4)
        assert len(paths) == 1
        assert paths[0].n_routers == 1

    def test_weighted_path_avoids_load(self):
        topo = mesh(3, 1, nis_per_router=1)
        # Heavy weight on the direct link forces... a line has no detour,
        # so the path is unchanged — the call must still succeed.
        path = weighted_shortest_path(
            topo, "ni0_0_0", "ni2_0_0", lambda key: 10.0)
        assert path.n_routers == 3

    def test_candidate_paths_include_load_aware_first(self):
        topo = mesh(3, 3, nis_per_router=1)
        calls = []

        def weight(key):
            calls.append(key)
            return 0.0

        paths = candidate_paths(topo, "ni0_0_0", "ni2_2_0", k=2,
                                link_weight=weight)
        assert len(paths) >= 2
        assert calls  # weight function was consulted

    def test_path_slot_shifts_with_stages(self):
        topo = mesh(2, 1, nis_per_router=1, pipeline_stages=1)
        path = xy_path(topo, "ni0_0_0", "ni1_0_0")
        # NI->r0 (shift 0), r0->r1 has 1 stage; r1->NI.
        assert path.link_shifts == (0, 1, 3)
        assert path.traversal_slots == 4

    def test_path_out_ports_match_topology(self):
        topo = mesh(2, 2, nis_per_router=1)
        path = xy_path(topo, "ni0_0_0", "ni1_1_0")
        nodes = [*path.routers, path.dest]
        for port, src, dst in zip(path.out_ports, path.routers, nodes[1:]):
            assert topo.out_port(src, dst) == port

    def test_header_field_roundtrip(self):
        topo = mesh(3, 3, nis_per_router=1)
        path = xy_path(topo, "ni0_0_0", "ni2_2_0")
        fmt = WordFormat()
        field = path.header_path_field(fmt)
        assert field <= (1 << fmt.path_bits) - 1


class TestMapping:
    def _channels(self):
        return [ChannelSpec(f"c{i}", f"ip{i}", f"ip{(i + 1) % 6}",
                            (i + 1) * 10 * MB) for i in range(6)]

    def test_round_robin_covers_all(self):
        topo = mesh(2, 2, nis_per_router=1)
        mapping = round_robin([f"ip{i}" for i in range(6)], topo)
        assert len(mapping.ips) == 6
        mapping.validate(topo)

    def test_traffic_balanced_spreads_load(self):
        topo = mesh(2, 1, nis_per_router=1)
        mapping = traffic_balanced([f"ip{i}" for i in range(6)],
                                   self._channels(), topo)
        counts = [len(mapping.ips_of(ni)) for ni in topo.nis]
        assert max(counts) - min(counts) <= 1

    def test_clustered_respects_capacity(self):
        topo = mesh(2, 2, nis_per_router=1)
        mapping = communication_clustered(
            [f"ip{i}" for i in range(8)], self._channels(), topo,
            max_ips_per_ni=2)
        for ni in topo.nis:
            assert len(mapping.ips_of(ni)) <= 2

    def test_unmapped_ip_raises(self):
        mapping = Mapping({"a": "ni0_0_0"})
        from repro.core.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            mapping.ni_of("missing")

    def test_mapping_validate_unknown_ni(self):
        topo = single_router(1)
        mapping = Mapping({"a": "nowhere"})
        with pytest.raises(TopologyError):
            mapping.validate(topo)

    def test_mapping_dict_roundtrip(self):
        mapping = Mapping({"a": "n1", "b": "n2"})
        assert Mapping.from_dict(mapping.to_dict()).ip_to_ni == \
            mapping.ip_to_ni
