"""Tests for the online control plane (repro.service) and its hot path."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, strategies as st

from repro.campaign import CampaignRunner, CampaignSpec, churn_campaign
from repro.campaign.runner import execute_run
from repro.campaign.spec import ScenarioSpec, TopologySpec
from repro.core.allocation import SlotAllocator
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.slot_table import (SlotTable, choose_slots_fast,
                                   mask_to_slots, max_consecutive_gap,
                                   rotate_mask, shifted, slots_to_mask)
from repro.service import (DEFAULT_CLASSES, AdmissionController, ChurnSpec,
                           ChurnWorkload, QosClass, SessionService,
                           run_demo)
from repro.topology.builders import concentrated_mesh, mesh


@pytest.fixture(scope="module")
def small_mesh():
    return mesh(2, 2, nis_per_router=2)


@pytest.fixture(scope="module")
def sec7_mesh():
    return concentrated_mesh(4, 3, nis_per_router=4)


class TestMaskArithmetic:
    @given(st.sets(st.integers(0, 15), max_size=16))
    def test_mask_roundtrip(self, slots):
        mask = slots_to_mask(slots, 16)
        assert set(mask_to_slots(mask)) == slots

    @given(st.sets(st.integers(0, 15), max_size=16),
           st.integers(-40, 40))
    def test_rotate_matches_shifted_membership(self, slots, shift):
        """Bit s of the rotated mask <=> slot (s+shift)%size is in the set."""
        size = 16
        mask = rotate_mask(slots_to_mask(slots, size), shift, size)
        for s in range(size):
            assert bool(mask >> s & 1) == (shifted(s, shift, size) in slots)

    def test_rotate_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            rotate_mask(1, 1, 0)

    @given(st.data())
    def test_table_mask_mirrors_owner_map(self, data):
        """Random reserve/release churn keeps mask and dict in lockstep."""
        size = data.draw(st.integers(2, 24))
        table = SlotTable(size)
        reserved: dict[int, str] = {}
        for step in range(data.draw(st.integers(1, 30))):
            slot = data.draw(st.integers(0, size - 1))
            if data.draw(st.booleans()):
                if slot not in reserved:
                    table.reserve(slot, f"o{step}")
                    reserved[slot] = f"o{step}"
            else:
                table.release(slot)
                reserved.pop(slot, None)
            assert table.occupancy_mask == slots_to_mask(reserved, size)
            assert table.free_slots() == (frozenset(range(size))
                                          - set(reserved))
            assert table.occupancy_mask & table.free_mask == 0

    @given(st.data())
    def test_choose_slots_fast_honours_constraints(self, data):
        size = data.draw(st.integers(4, 32))
        free = data.draw(st.sets(st.integers(0, size - 1), min_size=1,
                                 max_size=size))
        n = data.draw(st.integers(1, len(free)))
        max_gap = data.draw(st.one_of(st.none(), st.integers(1, size)))
        chosen = choose_slots_fast(free, n, size, max_gap=max_gap)
        if chosen is None:
            # Only a gap constraint can make the fast chooser fail once
            # n <= |free|; verify genuine infeasibility.
            assert max_gap is not None
            assert max_consecutive_gap(free, size) > max_gap
        else:
            assert len(chosen) >= n
            assert set(chosen) <= set(free)
            assert list(chosen) == sorted(set(chosen))
            if max_gap is not None:
                assert max_consecutive_gap(chosen, size) <= max_gap


class TestQos:
    def test_default_classes_well_formed(self):
        names = [c.name for c in DEFAULT_CLASSES]
        assert len(set(names)) == len(names)
        spec = DEFAULT_CLASSES[0].channel_spec("s1", "niA", "niB")
        assert spec.name == spec.application == "s1"

    def test_invalid_class_rejected(self):
        with pytest.raises(ConfigurationError):
            QosClass("bad", throughput_mb_s=0.0)
        with pytest.raises(ConfigurationError):
            QosClass("bad", throughput_mb_s=1.0, max_latency_ns=-1.0)
        with pytest.raises(ConfigurationError):
            QosClass("bad", throughput_mb_s=1.0, weight=0.0)


class TestChurnWorkload:
    def test_same_seed_same_stream(self, small_mesh):
        spec = ChurnSpec(n_sessions=60)
        a = ChurnWorkload(spec, small_mesh, 5).events()
        b = ChurnWorkload(spec, small_mesh, 5).events()
        assert a == b

    def test_different_seed_different_stream(self, small_mesh):
        spec = ChurnSpec(n_sessions=60)
        a = ChurnWorkload(spec, small_mesh, 5).events()
        b = ChurnWorkload(spec, small_mesh, 6).events()
        assert a != b

    def test_events_time_ordered_and_paired(self, small_mesh):
        workload = ChurnWorkload(ChurnSpec(n_sessions=40), small_mesh, 1)
        events = workload.events()
        assert len(events) == 80
        times = [e.time_s for e in events]
        assert times == sorted(times)
        opens = {e.session.session_id for e in events if e.kind == "open"}
        closes = {e.session.session_id for e in events
                  if e.kind == "close"}
        assert opens == closes

    def test_limit_truncates(self, small_mesh):
        workload = ChurnWorkload(ChurnSpec(n_sessions=40), small_mesh, 1)
        assert len(workload.events(limit=10)) == 10

    def test_durations_capped_and_positive(self, small_mesh):
        spec = ChurnSpec(n_sessions=200, max_duration_s=0.5)
        for s in ChurnWorkload(spec, small_mesh, 3).sessions:
            assert 0 < s.duration_s <= 0.5
            assert s.src_ni != s.dst_ni

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(n_sessions=0)
        with pytest.raises(ConfigurationError):
            ChurnSpec(pareto_shape=1.0)
        with pytest.raises(ConfigurationError):
            ChurnSpec(classes=())


class TestAdmissionController:
    def _controller(self, topo):
        allocator = SlotAllocator(topo, table_size=16, frequency_hz=500e6)
        return AdmissionController(allocator)

    def test_admit_then_release_restores_free_slots(self, small_mesh):
        ctrl = self._controller(small_mesh)
        spec = DEFAULT_CLASSES[2].channel_spec("s0", "ni0_0_0", "ni1_1_0")
        ca = ctrl.admit(spec, "ni0_0_0", "ni1_1_0")
        assert ca.slots
        ctrl.allocation.validate()
        ctrl.release("s0")
        ctrl.allocation.validate()
        assert all(t.occupancy_mask == 0
                   for t in ctrl.allocation.link_tables.values())

    def test_admission_is_contention_free_under_churn(self, small_mesh):
        ctrl = self._controller(small_mesh)
        rng = random.Random(9)
        nis = sorted(small_mesh.nis)
        active: list[str] = []
        for i in range(200):
            if active and rng.random() < 0.4:
                ctrl.release(active.pop(rng.randrange(len(active))))
            else:
                src, dst = rng.sample(nis, 2)
                qos = rng.choice(DEFAULT_CLASSES)
                name = f"s{i}"
                try:
                    ctrl.admit(qos.channel_spec(name, src, dst), src, dst)
                except AllocationError:
                    continue
                active.append(name)
        ctrl.allocation.validate()

    def test_rejection_commits_nothing(self, small_mesh):
        ctrl = self._controller(small_mesh)
        heavy = QosClass("huge", throughput_mb_s=2000.0)
        with pytest.raises(AllocationError):
            ctrl.admit(heavy.channel_spec("s0", "ni0_0_0", "ni1_1_0"),
                       "ni0_0_0", "ni1_1_0")
        assert all(t.occupancy_mask == 0
                   for t in ctrl.allocation.link_tables.values())
        assert ctrl.rejects == 1

    def test_infeasible_requirement_reason_names_no_route(self, small_mesh):
        """A latency no path can meet is not misreported as congestion."""
        ctrl = self._controller(small_mesh)
        impossible = QosClass("now", throughput_mb_s=1.0,
                              max_latency_ns=0.5)
        with pytest.raises(AllocationError) as excinfo:
            ctrl.admit(impossible.channel_spec("s0", "ni0_0_0", "ni1_1_0"),
                       "ni0_0_0", "ni1_1_0")
        assert excinfo.value.reason == "no route can meet the requirements"

    def test_deterministic_slot_choice(self, small_mesh):
        def one_pass():
            ctrl = self._controller(small_mesh)
            out = []
            for i, qos in enumerate(DEFAULT_CLASSES * 3):
                spec = qos.channel_spec(f"s{i}", "ni0_0_0", "ni1_1_0")
                try:
                    out.append(ctrl.admit(spec, "ni0_0_0", "ni1_1_0").slots)
                except AllocationError:
                    out.append(None)
            return out
        assert one_pass() == one_pass()


class TestSessionService:
    def _run(self, topo, *, n_sessions=120, seed=3, **kwargs):
        workload = ChurnWorkload(ChurnSpec(n_sessions=n_sessions), topo,
                                 seed)
        service = SessionService(topo, table_size=32,
                                 frequency_hz=500e6, **kwargs)
        return service.run(workload.events()), service

    def test_full_trace_clean(self, sec7_mesh):
        report, service = self._run(sec7_mesh)
        assert report.totals["n_events"] == 240
        assert report.invariant["ok"]
        assert report.totals["n_released"] == report.totals["n_accepted"]
        assert report.totals["active_at_end"] == 0
        assert report.totals["final_mean_link_utilisation"] == 0.0

    def test_reports_byte_identical_across_runs(self, sec7_mesh):
        first, _ = self._run(sec7_mesh)
        second, _ = self._run(sec7_mesh)
        assert first.to_json() == second.to_json()
        json.loads(first.to_json())  # valid JSON throughout

    def test_accepted_events_carry_bound_quotes(self, sec7_mesh):
        report, service = self._run(sec7_mesh)
        opens = [e for e in report.events if e["kind"] == "open"]
        accepted = [e for e in opens if e["decision"] == "accept"]
        assert accepted, "trace admitted no sessions?"
        for event in accepted:
            quote = event["quote"]
            assert quote["latency_bound_ns"] > 0
            assert quote["n_slots"] >= 1
            qos = next(c for c in DEFAULT_CLASSES
                       if c.name == event["class"])
            # The quote is a guarantee: it must cover the class
            # requirement it was admitted under.
            assert quote["throughput_mb_s"] * 1.000001 >= \
                qos.throughput_mb_s
            if qos.max_latency_ns is not None:
                assert quote["latency_bound_ns"] <= \
                    qos.max_latency_ns * 1.000001

    def test_rejections_recorded_not_raised(self, small_mesh):
        # A tiny mesh with heavy sessions must reject some opens.
        heavy = (QosClass("fat", throughput_mb_s=300.0, weight=1.0),)
        workload = ChurnWorkload(
            ChurnSpec(n_sessions=80, classes=heavy,
                      mean_duration_s=0.1), small_mesh, 11)
        service = SessionService(small_mesh, table_size=8,
                                 frequency_hz=500e6)
        report = service.run(workload.events())
        assert report.totals["n_rejected"] > 0
        assert report.invariant["ok"]
        rejected = [e for e in report.events
                    if e.get("decision") == "reject"]
        assert all(e["reason"] for e in rejected)

    def test_shared_allocator_does_not_change_results(self, sec7_mesh):
        """Cache warm-up must be invisible in the canonical report."""
        allocator = SlotAllocator(sec7_mesh, table_size=32,
                                  frequency_hz=500e6)
        cold, _ = self._run(sec7_mesh)
        warm, _ = self._run(sec7_mesh, allocator=allocator)
        warm2, _ = self._run(sec7_mesh, allocator=allocator)
        assert cold.to_json() == warm.to_json() == warm2.to_json()

    def test_conflicting_allocator_parameters_rejected(self, sec7_mesh):
        allocator = SlotAllocator(sec7_mesh, table_size=32,
                                  frequency_hz=500e6)
        with pytest.raises(ConfigurationError):
            SessionService(sec7_mesh, table_size=16, allocator=allocator)
        with pytest.raises(ConfigurationError):
            SessionService(sec7_mesh, frequency_hz=1e9,
                           allocator=allocator)
        with pytest.raises(ConfigurationError):
            SessionService(mesh(2, 2, nis_per_router=1),
                           allocator=allocator)

    def test_series_snapshots_every_window(self, sec7_mesh):
        report, _ = self._run(sec7_mesh, window=50)
        assert len(report.series) == 240 // 50
        for point in report.series:
            assert 0.0 <= point["accept_rate_total"] <= 1.0
            assert point["active_sessions"] >= 0


class TestServeDemo:
    def test_demo_deterministic_and_clean(self):
        report, identical = run_demo(n_events=200, seed=7)
        assert identical
        assert report.totals["n_events"] == 200
        assert report.invariant["ok"]
        opens = [e for e in report.events if e["kind"] == "open"]
        assert all("quote" in e for e in opens
                   if e["decision"] == "accept")

    def test_demo_cli_exit_code(self, capsys):
        from repro.__main__ import main
        assert main(["serve", "--demo", "--events", "120"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical: yes" in out
        assert "invariant held" in out

    def test_serve_without_demo_errors(self, capsys):
        from repro.__main__ import main
        assert main(["serve"]) == 2


class TestChurnCampaign:
    def test_serve_scenario_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", mode="interpretive-dance")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", churn=ChurnSpec())  # simulate + churn

    def test_execute_serve_run_record(self):
        spec = CampaignSpec(
            name="one", seeds=(1,),
            scenarios=(ScenarioSpec(
                name="churny", mode="serve",
                topology=TopologySpec(kind="mesh", cols=2, rows=2,
                                      nis_per_router=2),
                churn=ChurnSpec(n_sessions=50), table_size=16),))
        record = execute_run(spec.expand()[0])
        assert record["status"] == "ok"
        assert record["mode"] == "serve"
        result = record["result"]
        assert result["invariant"]["ok"]
        assert result["totals"]["n_events"] == 100
        json.dumps(record)

    def test_churn_preset_shape_and_determinism(self):
        spec = churn_campaign(n_sessions=40, seeds=(1,))
        assert len(spec.scenarios) == 8  # 2 topo x 2 mix x 2 rate
        assert all(s.mode == "serve" for s in spec.scenarios)
        serial = CampaignRunner(spec, workers=1).run()
        assert serial.n_failed == 0
        again = CampaignRunner(spec, workers=1).run()
        assert serial.to_json() == again.to_json()


class TestExplorationFailureSurfacing:
    def test_infeasible_error_names_channel_and_reason(self, mesh_config):
        """min_feasible_frequency surfaces the allocator's last failure."""
        from dataclasses import replace

        from repro.core.application import Application, UseCase
        from repro.design.search import min_feasible_frequency

        # A latency requirement below any path's traversal time can never
        # be met, at any frequency in the search interval.
        apps = []
        for app in mesh_config.use_case.applications:
            channels = tuple(
                replace(ch, max_latency_ns=0.5)
                if ch.name == "c0" else ch
                for ch in app.channels)
            apps.append(Application(app.name, channels))
        impossible = UseCase("impossible", tuple(apps))
        with pytest.raises(AllocationError) as excinfo:
            min_feasible_frequency(
                mesh_config.topology, impossible, mesh_config.mapping,
                table_size=8, high_hz=1e9)
        err = excinfo.value
        assert err.channel == "c0"
        assert err.reason
        assert "c0" in str(err)
        assert err.__cause__ is not None
