"""Adversarial property tests for the weighted-fair admission tier.

Four claims, each stated as a hypothesis property rather than an
example:

* a tenant's admitted-capacity share is monotone in its weight under
  symmetric saturated load;
* equal weights admit within one session of each other under symmetric
  load;
* no policy layer (throttle, overload shed, WFQ gate) ever rejects a
  tenant below its guaranteed floor;
* ``policy="fcfs"`` reproduces the default ServiceReport byte for byte.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import (ChurnSpec, ChurnWorkload, FairnessSpec,
                           SessionService, TenantSpec,
                           WeightedFairScheduler)
from repro.service.churn import SessionRequest
from repro.service.qos import DEFAULT_CLASSES, class_by_name
from repro.topology.builders import mesh

VIDEO = class_by_name(DEFAULT_CLASSES, "video")

#: One accounting window for the whole drive: WFQ state never resets,
#: so the properties constrain the full admission history.
ONE_WINDOW = 1e9


def _request(i: int, tenant: str, qos=VIDEO,
             app: str = "app0") -> SessionRequest:
    return SessionRequest(f"s{i}", qos, "ni0", "ni1", 0.0, 1.0,
                          tenant, app)


def _drive_round_robin(scheduler, names, n_arrivals, qos=VIDEO):
    """Symmetric saturated load: tenants arrive in strict rotation.

    Every admission is granted (the property tier has no allocator),
    so the scheduler's gates alone decide the admitted counts.
    """
    admitted = dict.fromkeys(names, 0)
    for i in range(n_arrivals):
        name = names[i % len(names)]
        request = _request(i, name, qos)
        if scheduler.admit_decision(i * 1e-6, request) is None:
            scheduler.on_admitted(i * 1e-6, request)
            admitted[name] += 1
    return admitted


def _enforcing_spec(quantum: float = 1.0, **overrides) -> FairnessSpec:
    """A spec whose WFQ gate is always on (no pressure precondition)."""
    return FairnessSpec(quantum=quantum, window_s=ONE_WINDOW,
                        pressure_threshold=0.0, **overrides)


class TestWeightMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(low=st.floats(0.25, 8.0), high=st.floats(0.25, 8.0),
           quantum=st.sampled_from([1.0, 1.5, 2.0, 4.0]),
           n_peers=st.integers(1, 3), n_rounds=st.integers(4, 50))
    def test_admitted_share_monotone_in_weight(self, low, high, quantum,
                                               n_peers, n_rounds):
        """Raising only tenant T's weight never lowers T's share."""
        low, high = sorted((low, high))
        names = ["T"] + [f"peer{i}" for i in range(n_peers)]

        def share(weight: float) -> float:
            tenants = tuple(
                TenantSpec(n, weight=weight if n == "T" else 1.0)
                for n in names)
            scheduler = WeightedFairScheduler(
                tenants, spec=_enforcing_spec(quantum))
            admitted = _drive_round_robin(
                scheduler, names, n_rounds * len(names))
            total = sum(admitted.values())
            return admitted["T"] / total if total else 0.0

        assert share(high) >= share(low) - 1e-9

    def test_weight_doubles_share_under_contention(self):
        """The quantitative anchor: w=2 vs two w=1 peers => ~half."""
        names = ("T", "peer0", "peer1")
        tenants = tuple(TenantSpec(n, weight=2.0 if n == "T" else 1.0)
                        for n in names)
        scheduler = WeightedFairScheduler(tenants,
                                          spec=_enforcing_spec(1.0))
        admitted = _drive_round_robin(scheduler, names, 180)
        share = admitted["T"] / sum(admitted.values())
        assert abs(share - 0.5) < 0.05


class TestEqualWeightFairness:
    @settings(max_examples=60, deadline=None)
    @given(n_tenants=st.integers(2, 5), n_arrivals=st.integers(1, 200),
           qos=st.sampled_from(DEFAULT_CLASSES))
    def test_equal_weights_admit_within_one_session(self, n_tenants,
                                                    n_arrivals, qos):
        """Strict quantum, symmetric load: counts differ by at most 1.

        ``n_arrivals`` need not complete the final rotation, so the
        property also covers mid-round prefixes.
        """
        names = tuple(f"t{i}" for i in range(n_tenants))
        scheduler = WeightedFairScheduler(
            tuple(TenantSpec(n) for n in names),
            spec=_enforcing_spec(1.0))
        admitted = _drive_round_robin(scheduler, names, n_arrivals, qos)
        counts = sorted(admitted.values())
        assert counts[-1] - counts[0] <= 1


class TestGuaranteedFloor:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_no_policy_rejection_below_floor(self, data):
        """Every shed verdict logged its tenant at/above its floor.

        The spec is hostile on purpose: one-open throttle ceilings, an
        overload signal primed to shed every rank, and an
        unconditionally enforcing WFQ gate — the floor must beat all
        three layers.
        """
        n_tenants = data.draw(st.integers(1, 3), label="n_tenants")
        floors = tuple(
            data.draw(st.integers(0, 3), label=f"floor{i}")
            for i in range(n_tenants))
        tenants = tuple(
            TenantSpec(f"t{i}", floor_opens_per_window=floors[i],
                       apps=("a", "b"))
            for i in range(n_tenants))
        spec = FairnessSpec(
            quantum=1.0, window_s=0.005, pressure_threshold=0.0,
            tenant_opens_per_window=1, app_opens_per_window=1,
            min_overload_samples=1, overload_window=8,
            shed_thresholds=(0.01, 0.02, 0.03))
        scheduler = WeightedFairScheduler(tenants, spec=spec,
                                          record_decisions=True)
        n_arrivals = data.draw(st.integers(1, 120), label="n_arrivals")
        for i in range(n_arrivals):
            tenant = tenants[data.draw(
                st.integers(0, n_tenants - 1), label=f"who{i}")]
            qos = data.draw(st.sampled_from(DEFAULT_CLASSES),
                            label=f"qos{i}")
            rejected = data.draw(st.booleans(), label=f"reject{i}")
            request = SessionRequest(
                f"s{i}", qos, "ni0", "ni1", 0.0, 1.0, tenant.name,
                tenant.apps[i % len(tenant.apps)])
            time_s = i * 0.0007  # crosses window boundaries
            if scheduler.admit_decision(time_s, request) is None:
                if rejected:
                    scheduler.on_capacity_reject(time_s, request)
                else:
                    scheduler.on_admitted(time_s, request)
        floor_of = {t.name: t.floor_opens_per_window for t in tenants}
        sheds = [d for d in scheduler.decisions if d[4] != "pass"]
        for (_, tenant, _, _, kind, admitted_in_window) in sheds:
            assert kind in WeightedFairScheduler.REASONS
            assert admitted_in_window >= floor_of[tenant], (
                f"{kind} shed tenant {tenant} below its floor")


class TestFcfsByteIdentity:
    @pytest.fixture(scope="class")
    def topology(self):
        return mesh(2, 2, nis_per_router=2)

    @settings(max_examples=8, deadline=None)
    @given(n_sessions=st.integers(8, 30), seed=st.integers(0, 2 ** 20))
    def test_policy_fcfs_reproduces_default_report(self, topology,
                                                   n_sessions, seed):
        """``policy="fcfs"`` is the default path, byte for byte."""
        events = ChurnWorkload(ChurnSpec(n_sessions=n_sessions),
                               topology, seed).events()

        def run(**kwargs):
            service = SessionService(
                topology, table_size=16, frequency_hz=500e6,
                name="identity", seed=7, record_events=False, **kwargs)
            return service.run(events)

        default, explicit = run(), run(policy="fcfs")
        assert default.to_json() == explicit.to_json()
        record = json.loads(default.to_json())
        assert "fairness" not in record
        assert "tenants" not in record
