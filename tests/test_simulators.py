"""Cross-validation of the flit-level and word-level simulators.

The load-bearing claims:

* **Agreement** — on any synchronous configuration the fast flit-level
  simulator and the detailed word-level model produce identical message
  latencies (the flit-synchronous abstraction is exact, not approximate);
* **Predictability** — no simulated message is ever later than the
  analytical worst-case bound, and saturated channels deliver exactly
  their guaranteed throughput;
* **Composability** — per-channel traces are bit-identical across any
  combination of other applications running or not.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyse
from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.simulation.backend import (BestEffortBackend,
                                      CycleAccurateBackend,
                                      FlitLevelBackend, SimRequest,
                                      available_backends, create_backend)
from repro.simulation.composability import compare_subsets
from repro.simulation.cyclesim import DetailedNetwork
from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.traffic import (BernoulliMessages, ConstantBitRate,
                                      PeriodicBurst, Replay, Saturating,
                                      MessageEvent)
from repro.topology.builders import mesh, ring, single_router
from repro.topology.mapping import Mapping, round_robin


def _cbr_traffic(config, factor=1.0, offset=0):
    return {name: ConstantBitRate.from_rate(
        ca.spec.throughput_bytes_per_s * factor, config.frequency_hz,
        config.fmt, offset_cycles=offset)
        for name, ca in config.allocation.channels.items()}


class TestTrafficPatterns:
    def test_cbr_rate_is_exact(self, fmt):
        pattern = ConstantBitRate.from_rate(100 * MB, 500e6, fmt)
        horizon = 300_000
        offered = pattern.offered_bytes(horizon, fmt)
        seconds = horizon / 500e6
        assert offered / seconds == pytest.approx(100 * MB, rel=0.01)

    def test_burst_pattern(self):
        pattern = PeriodicBurst(burst_messages=3, message_words=2,
                                period_cycles=30)
        events = pattern.events(60)
        assert len(events) == 6
        assert [e.cycle for e in events[:3]] == [0, 0, 0]

    def test_bernoulli_deterministic_per_seed(self):
        a = BernoulliMessages(0.4, 2, 3, seed=7).events(600)
        b = BernoulliMessages(0.4, 2, 3, seed=7).events(600)
        assert a == b

    def test_replay_requires_sorted(self):
        with pytest.raises(ConfigurationError):
            Replay([MessageEvent(10, 1, 0), MessageEvent(5, 1, 1)])

    def test_saturating_every_slot(self, fmt):
        events = Saturating(2, fmt.flit_size).events(30)
        assert [e.cycle for e in events] == [0, 3, 6, 9, 12, 15, 18, 21,
                                             24, 27]


class TestFlitSimulator:
    def test_latency_never_exceeds_bound(self, mesh_config):
        bounds = analyse(mesh_config.allocation)
        sim = FlitLevelSimulator(mesh_config, check_contention=True)
        for name, pattern in _cbr_traffic(mesh_config, offset=1).items():
            sim.set_traffic(name, pattern)
        result = sim.run(2000)
        for name, bound in bounds.items():
            summary = result.stats.channel(name).latency_summary()
            assert summary.maximum <= bound.latency_ns + 1e-9

    def test_saturated_throughput_equals_guarantee(self, mesh_config):
        bounds = analyse(mesh_config.allocation)
        sim = FlitLevelSimulator(mesh_config)
        for name in mesh_config.allocation.channels:
            sim.set_traffic(name, Saturating(
                mesh_config.fmt.payload_words_per_flit,
                mesh_config.fmt.flit_size))
        result = sim.run(4000)
        for name, bound in bounds.items():
            measured = result.channel_throughput_bytes_per_s(
                name, warmup_fraction=0.25)
            assert measured == pytest.approx(
                bound.throughput_bytes_per_s, rel=0.02)

    def test_oversubscription_slows_only_itself(self, mesh_config):
        """2x offered load on c0 backlogs c0 but leaves c1/c2 untouched."""
        sim_ref = FlitLevelSimulator(mesh_config)
        sim_over = FlitLevelSimulator(mesh_config)
        for name, pattern in _cbr_traffic(mesh_config).items():
            sim_ref.set_traffic(name, pattern)
        over = _cbr_traffic(mesh_config)
        over["c0"] = ConstantBitRate.from_rate(
            mesh_config.allocation.channel(
                "c0").spec.throughput_bytes_per_s * 3,
            mesh_config.frequency_hz, mesh_config.fmt)
        for name, pattern in over.items():
            sim_over.set_traffic(name, pattern)
        r_ref = sim_ref.run(2000)
        r_over = sim_over.run(2000)
        for unaffected in ("c1", "c2"):
            assert r_ref.trace.trace(unaffected) == \
                r_over.trace.trace(unaffected)
        # The oversubscribed channel itself falls behind (queueing).
        ref_max = r_ref.stats.channel("c0").latency_summary().maximum
        over_max = r_over.stats.channel("c0").latency_summary().maximum
        assert over_max > ref_max

    def test_flow_control_backpressure(self, tiny_config):
        sim = FlitLevelSimulator(tiny_config, flow_control=True,
                                 rx_buffer_words=2)
        sim.set_traffic("a2b", Saturating(
            tiny_config.fmt.payload_words_per_flit,
            tiny_config.fmt.flit_size))
        result = sim.run(500)
        assert result.stalled_slots_by_channel["a2b"] > 0

    def test_unknown_channel_rejected(self, tiny_config):
        sim = FlitLevelSimulator(tiny_config)
        with pytest.raises(ConfigurationError):
            sim.set_traffic("nope", Saturating(2, 3))

    def test_contention_check_clean_on_valid_allocation(self, mesh_config):
        sim = FlitLevelSimulator(mesh_config, check_contention=True)
        for name in mesh_config.allocation.channels:
            sim.set_traffic(name, Saturating(2, 3))
        sim.run(1000)  # must not raise


class TestSimulatorAgreement:
    def test_sync_detailed_matches_flitsim_exactly(self, mesh_config):
        traffic = _cbr_traffic(mesh_config, offset=2)
        flit = FlitLevelSimulator(mesh_config)
        for name, pattern in traffic.items():
            flit.set_traffic(name, pattern)
        fres = flit.run(400)
        detailed = DetailedNetwork(mesh_config, clocking="synchronous",
                                   traffic=traffic, horizon_slots=400)
        dres = detailed.run()
        for name in mesh_config.allocation.channels:
            f = [(d.message_id, d.latency_ns)
                 for d in fres.stats.channel(name).deliveries]
            d = [(x.message_id, x.latency_ns)
                 for x in dres.stats.channel(name).deliveries]
            n = min(len(f), len(d))
            assert n > 5
            assert f[:n] == d[:n]

    def test_mesochronous_within_one_cycle_of_flitsim(self, mesh_config):
        traffic = _cbr_traffic(mesh_config, offset=2)
        flit = FlitLevelSimulator(mesh_config)
        for name, pattern in traffic.items():
            flit.set_traffic(name, pattern)
        fres = flit.run(300)
        detailed = DetailedNetwork(mesh_config, clocking="mesochronous",
                                   traffic=traffic, horizon_slots=300,
                                   mesochronous_seed=11)
        dres = detailed.run()
        cycle_ns = 1e9 / mesh_config.frequency_hz
        for name in mesh_config.allocation.channels:
            f = {d.message_id: d.latency_ns
                 for d in fres.stats.channel(name).deliveries}
            d = {x.message_id: x.latency_ns
                 for x in dres.stats.channel(name).deliveries}
            common = sorted(set(f) & set(d))
            assert len(common) > 5
            for mid in common:
                assert abs(f[mid] - d[mid]) <= cycle_ns

    def test_mesochronous_fifo_bounded(self, mesh_config):
        detailed = DetailedNetwork(mesh_config, clocking="mesochronous",
                                   traffic=_cbr_traffic(mesh_config),
                                   horizon_slots=300, mesochronous_seed=3)
        result = detailed.run()
        assert result.fifo_max_occupancy
        assert max(result.fifo_max_occupancy.values()) <= 4


def _backend_config(kind: str):
    """A small allocated configuration on a mesh or ring topology."""
    if kind == "mesh":
        topo = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
        nis = ["ni0_0_0", "ni1_0_0", "ni1_1_0"]
    else:
        topo = ring(4, nis_per_router=1, pipeline_stages=1)
        nis = ["ni0_0_0", "ni1_0_0", "ni2_0_0"]
    channels = (
        ChannelSpec("c0", "ipA", "ipB", 60 * MB, application="appX"),
        ChannelSpec("c1", "ipB", "ipC", 60 * MB, application="appX"),
        ChannelSpec("c2", "ipC", "ipA", 60 * MB, application="appY"),
    )
    use_case = UseCase(f"{kind}_equiv", (
        Application("appX", channels[:2]),
        Application("appY", channels[2:]),
    ))
    mapping = Mapping({"ipA": nis[0], "ipB": nis[1], "ipC": nis[2]})
    return configure(topo, use_case, table_size=8, frequency_hz=500e6,
                     mapping=mapping)


class TestSimulationBackendProtocol:
    """The unified API: every simulator behind one request/result schema."""

    def test_registry_lists_all_backends(self):
        assert available_backends() == ("be", "cycle", "flit")
        with pytest.raises(ConfigurationError):
            create_backend("nope", None)

    @pytest.mark.parametrize("kind", ["mesh", "ring"])
    def test_flit_and_cycle_schedules_identical(self, kind):
        """Flit-level and cycle-accurate backends agree through the
        protocol: identical logical flit schedules on mesh and ring."""
        config = _backend_config(kind)
        request = SimRequest(n_slots=400, traffic=_cbr_traffic(
            config, offset=2))
        flit = create_backend("flit", config).run(request)
        cycle = create_backend(
            "cycle", config, clocking="synchronous").run(request)
        for name in config.allocation.channels:
            f = flit.logical_schedule(name)
            c = cycle.logical_schedule(name)
            n = min(len(f), len(c))
            assert n > 5
            assert f[:n] == c[:n]

    def test_requests_are_reusable_and_runs_independent(self, mesh_config):
        backend = FlitLevelBackend(mesh_config)
        request = SimRequest(n_slots=300, traffic=_cbr_traffic(mesh_config))
        first = backend.run(request)
        second = backend.run(request)
        for name in mesh_config.allocation.channels:
            assert first.logical_schedule(name) == \
                second.logical_schedule(name)

    def test_be_backend_takes_frequency_override(self, mesh_config):
        backend = BestEffortBackend(mesh_config, buffer_flits=2)
        request = SimRequest(n_slots=300,
                             traffic=_cbr_traffic(mesh_config),
                             frequency_hz=1e9)
        result = backend.run(request)
        assert result.frequency_hz == 1e9
        assert result.backend == "be"

    def test_tdm_backends_reject_frequency_override(self, mesh_config):
        request = SimRequest(n_slots=100,
                             traffic=_cbr_traffic(mesh_config),
                             frequency_hz=1e9)
        with pytest.raises(ConfigurationError):
            FlitLevelBackend(mesh_config).run(request)
        with pytest.raises(ConfigurationError):
            CycleAccurateBackend(mesh_config).run(request)

    def test_unknown_traffic_channel_rejected(self, mesh_config):
        request = SimRequest(n_slots=100,
                             traffic={"ghost": Saturating(2, 3)})
        with pytest.raises(ConfigurationError):
            FlitLevelBackend(mesh_config).run(request)

    def test_invalid_request_rejected(self):
        with pytest.raises(ConfigurationError):
            SimRequest(n_slots=0)
        with pytest.raises(ConfigurationError):
            SimRequest(n_slots=10, frequency_hz=-1.0)

    def test_result_schema_uniform_across_backends(self, mesh_config):
        request = SimRequest(n_slots=300,
                             traffic=_cbr_traffic(mesh_config))
        for kind in available_backends():
            result = create_backend(kind, mesh_config).run(request)
            assert result.backend == kind
            assert result.simulated_slots == 300
            summary = result.latency_summary()
            assert summary is not None and summary.count > 0
            record = result.to_record()
            assert record["backend"] == kind
            assert record["latency_ns"]["p99"] >= record["latency_ns"]["p50"]
            text = result.summary()
            assert "p99" in text and kind in text
            assert "p99" in repr(result)

    def test_silent_channels_absent_from_stats(self, mesh_config):
        """Channels that recorded nothing stay out of stats/records."""
        traffic = _cbr_traffic(mesh_config)
        subset = {"c0": traffic["c0"]}
        result = FlitLevelBackend(mesh_config).run(
            SimRequest(n_slots=300, traffic=subset))
        assert result.stats.channels == ("c0",)
        # Reading a silent channel is pure: it must not register it.
        assert result.channel_latencies_ns("c1") == []
        assert result.stats.channels == ("c0",)
        assert sorted(result.to_record()["channels"]) == ["c0"]

    def test_composability_trace_rebuilt_from_stats(self, mesh_config):
        """A backend without a native trace yields an equivalent one."""
        request = SimRequest(n_slots=300,
                             traffic=_cbr_traffic(mesh_config, offset=2))
        flit = FlitLevelBackend(mesh_config).run(request)
        cycle = CycleAccurateBackend(
            mesh_config, clocking="synchronous").run(request)
        assert cycle.trace is None
        rebuilt = cycle.composability_trace()
        native = flit.composability_trace()
        for name in mesh_config.allocation.channels:
            n = min(len(native.trace(name)), len(rebuilt.trace(name)))
            assert n > 5
            # message ids and delivery order agree; the flit simulator's
            # native injection slots are absolute, the rebuilt ones come
            # from the NI's record log, so compare id sequences.
            assert [e[0] for e in native.trace(name)[:n]] == \
                [e[0] for e in rebuilt.trace(name)[:n]]


class TestComposability:
    def test_application_subsets_bit_identical(self, mesh_config):
        traffic = _cbr_traffic(mesh_config)
        scenarios = {
            "appX_alone": {"c0", "c1"},
            "appY_alone": {"c2"},
            "c0_alone": {"c0"},
        }
        reports = compare_subsets(mesh_config, traffic, scenarios,
                                  n_slots=1500)
        for report in reports:
            assert report.is_composable, report

    def test_perturbed_neighbours_do_not_matter(self, mesh_config):
        """Changing appY's traffic wildly never moves appX's flits."""
        from repro.simulation.composability import run_with_channels
        base = _cbr_traffic(mesh_config)
        crazy = dict(base)
        crazy["c2"] = Saturating(mesh_config.fmt.payload_words_per_flit,
                                 mesh_config.fmt.flit_size)
        t_base = run_with_channels(mesh_config, base,
                                   {"c0", "c1", "c2"}, 1500)
        t_crazy = run_with_channels(mesh_config, crazy,
                                    {"c0", "c1", "c2"}, 1500)
        for survivor in ("c0", "c1"):
            assert t_base.trace(survivor) == t_crazy.trace(survivor)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_composability_random_workloads(self, seed):
        """Property: random feasible workloads are always composable."""
        rng = random.Random(seed)
        topo = mesh(2, 2, nis_per_router=1)
        ips = [f"ip{i}" for i in range(8)]
        mapping = round_robin(ips, topo)
        channels = []
        for i in range(6):
            src, dst = rng.sample(ips, 2)
            while mapping.ni_of(src) == mapping.ni_of(dst):
                src, dst = rng.sample(ips, 2)
            channels.append(ChannelSpec(
                f"c{i}", src, dst, rng.uniform(5, 60) * MB,
                application=f"app{i % 2}"))
        apps = tuple(
            Application(f"app{k}", tuple(
                c for c in channels if c.application == f"app{k}"))
            for k in range(2))
        use_case = UseCase("rand", apps)
        try:
            config = configure(topo, use_case, table_size=16,
                               frequency_hz=500e6, mapping=mapping)
        except AllocationError:
            return
        traffic = {
            c.name: BernoulliMessages(0.5, 2, 3, seed=seed + i)
            for i, c in enumerate(channels)}
        reports = compare_subsets(
            config, traffic,
            {"app0": {c.name for c in channels
                      if c.application == "app0"}},
            n_slots=600)
        assert all(r.is_composable for r in reports)
