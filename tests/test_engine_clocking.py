"""Tests for clock domains and the two-phase event kernel."""

from __future__ import annotations

import pytest

from repro.clocking.clock import PS_PER_S, ClockDomain, period_ps_from_hz
from repro.clocking.domains import (mesochronous_domains,
                                    plesiochronous_domains,
                                    synchronous_domains)
from repro.core.exceptions import ConfigurationError
from repro.simulation.engine import Engine
from repro.simulation.signals import IDLE, Phit, WordWire


class TestClockDomain:
    def test_frequency(self):
        clock = ClockDomain("c", period_ps=2000)
        assert clock.frequency_hz == pytest.approx(500e6)

    def test_period_from_hz(self):
        assert period_ps_from_hz(500e6) == 2000
        assert period_ps_from_hz(1e9) == 1000

    def test_edges(self):
        clock = ClockDomain("c", period_ps=10, phase_ps=3)
        assert clock.edge_time(0) == 3
        assert clock.edge_time(2) == 23
        assert list(clock.edges_until(25)) == [(0, 3), (1, 13), (2, 23)]

    def test_cycles_in(self):
        clock = ClockDomain("c", period_ps=10, phase_ps=3)
        assert clock.cycles_in(3) == 0
        assert clock.cycles_in(4) == 1
        assert clock.cycles_in(24) == 3

    def test_skew_signed_and_bounded(self):
        a = ClockDomain("a", period_ps=100, phase_ps=0)
        b = ClockDomain("b", period_ps=100, phase_ps=30)
        assert a.skew_to(b) == 30
        assert b.skew_to(a) == -30

    def test_skew_wraps_to_half_period(self):
        a = ClockDomain("a", period_ps=100, phase_ps=0)
        b = ClockDomain("b", period_ps=100, phase_ps=80)
        assert a.skew_to(b) == -20

    def test_skew_between_plesiochronous_undefined(self):
        a = ClockDomain("a", period_ps=100)
        b = ClockDomain("b", period_ps=101)
        with pytest.raises(ConfigurationError):
            a.skew_to(b)

    def test_phase_must_be_within_period(self):
        with pytest.raises(ConfigurationError):
            ClockDomain("c", period_ps=10, phase_ps=10)


class TestDomainFactories:
    def test_synchronous_shares_one_clock(self):
        domains = synchronous_domains(["a", "b"], 500e6)
        assert domains["a"] is domains["b"]

    def test_mesochronous_equal_periods_bounded_phase(self):
        domains = mesochronous_domains(
            [f"n{i}" for i in range(20)], 500e6, seed=5)
        periods = {d.period_ps for d in domains.values()}
        assert len(periods) == 1
        period = periods.pop()
        for a in domains.values():
            for b in domains.values():
                assert abs(a.skew_to(b)) <= period // 2

    def test_mesochronous_deterministic_per_seed(self):
        d1 = mesochronous_domains(["a", "b", "c"], 500e6, seed=9)
        d2 = mesochronous_domains(["a", "b", "c"], 500e6, seed=9)
        assert d1 == d2

    def test_plesiochronous_periods_within_ppm(self):
        nominal = period_ps_from_hz(500e6)
        domains = plesiochronous_domains(
            [f"n{i}" for i in range(10)], 500e6, ppm=1000, seed=2)
        for d in domains.values():
            assert abs(d.period_ps - nominal) <= nominal * 1000 / 1e6 + 1

    def test_bad_skew_fraction(self):
        with pytest.raises(ConfigurationError):
            mesochronous_domains(["a"], 500e6, max_skew_fraction=0.7)


class _Counter:
    """Test component: counts edges, checks two-phase ordering."""

    def __init__(self):
        self.compute_calls: list[int] = []
        self.commit_calls: list[int] = []

    def compute(self, cycle, time_ps):
        self.compute_calls.append(cycle)

    def commit(self, cycle, time_ps):
        # Compute of this cycle must already have happened.
        assert self.compute_calls[-1] == cycle
        self.commit_calls.append(cycle)


class _Producer:
    def __init__(self, wire):
        self.wire = wire

    def compute(self, cycle, time_ps):
        pass

    def commit(self, cycle, time_ps):
        self.wire.drive(Phit(word=cycle, valid=True, eop=False))


class _Consumer:
    def __init__(self, wire):
        self.wire = wire
        self.seen: list[int | None] = []

    def compute(self, cycle, time_ps):
        phit = self.wire.sample()
        self.seen.append(phit.word if phit.valid else None)

    def commit(self, cycle, time_ps):
        pass


class TestEngine:
    def test_all_edges_run(self):
        engine = Engine()
        clock = ClockDomain("c", period_ps=10)
        counter = _Counter()
        engine.add_component(clock, counter)
        engine.run_until(100)
        assert counter.compute_calls == list(range(10))
        assert counter.commit_calls == list(range(10))

    def test_wire_has_one_cycle_delay(self):
        """A value driven at commit of cycle n is seen at compute n+1."""
        engine = Engine()
        clock = ClockDomain("c", period_ps=10)
        wire = WordWire("w")
        producer = _Producer(wire)
        consumer = _Consumer(wire)
        # Consumer registered FIRST: order must not matter thanks to the
        # two-phase discipline.
        engine.add_component(clock, consumer)
        engine.add_component(clock, producer)
        engine.add_wire(clock, wire)
        engine.run_until(50)
        assert consumer.seen == [None, 0, 1, 2, 3]

    def test_interleaved_domains_fire_in_time_order(self):
        engine = Engine()
        fast = ClockDomain("fast", period_ps=10)
        slow = ClockDomain("slow", period_ps=25, phase_ps=5)
        log: list[tuple[str, int]] = []

        class Logger:
            def __init__(self, name):
                self.name = name

            def compute(self, cycle, time_ps):
                log.append((self.name, time_ps))

            def commit(self, cycle, time_ps):
                pass

        engine.add_component(fast, Logger("fast"))
        engine.add_component(slow, Logger("slow"))
        engine.run_until(60)
        times = [t for _, t in log]
        assert times == sorted(times)
        assert ("slow", 5) in log and ("slow", 30) in log
        assert ("fast", 0) in log and ("fast", 50) in log

    def test_resume_does_not_duplicate_edges(self):
        engine = Engine()
        clock = ClockDomain("c", period_ps=10)
        counter = _Counter()
        engine.add_component(clock, counter)
        engine.run_until(35)
        engine.run_until(70)
        assert counter.compute_calls == list(range(7))

    def test_cannot_run_backwards(self):
        engine = Engine()
        engine.run_until(100)
        with pytest.raises(ConfigurationError):
            engine.run_until(50)

    def test_double_drive_raises(self):
        from repro.core.exceptions import SimulationError
        wire = WordWire("w")
        wire.drive(IDLE)
        with pytest.raises(SimulationError):
            wire.drive(IDLE)

    def test_undriven_wire_latches_idle(self):
        wire = WordWire("w")
        wire.drive(Phit(word=1, valid=True, eop=False))
        wire.latch()
        assert wire.sample().valid
        wire.latch()
        assert not wire.sample().valid
