"""Tests for requirement translation, analytical bounds and buffers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.allocation import ChannelAllocation
from repro.core.analysis import channel_bounds, summarise
from repro.core.buffers import (credit_headroom_ok, credit_loop,
                                required_rx_buffer_words,
                                required_tx_buffer_words)
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.path import make_path
from repro.core.requirements import (latency_bound_ns,
                                     link_payload_bytes_per_s,
                                     link_raw_bytes_per_s,
                                     max_gap_for_latency, slot_duration_s,
                                     slots_for_throughput,
                                     table_rotation_s, throughput_of_slots)
from repro.core.words import WordFormat
from repro.topology.builders import mesh, single_router


@pytest.fixture
def short_path():
    topo = single_router(2)
    return make_path(topo, "ni0_0_0", ["r0_0"], "ni0_0_1")


class TestRequirementArithmetic:
    def test_slot_duration(self, fmt):
        assert slot_duration_s(500e6, fmt) == pytest.approx(6e-9)

    def test_rotation(self, fmt):
        assert table_rotation_s(16, 500e6, fmt) == pytest.approx(96e-9)

    def test_raw_and_payload_bandwidth(self, fmt):
        assert link_raw_bytes_per_s(500e6, fmt) == pytest.approx(2e9)
        assert link_payload_bytes_per_s(500e6, fmt) == \
            pytest.approx(2e9 * 2 / 3)

    def test_one_slot_throughput(self, fmt):
        # One slot of 16 at 500 MHz: 8 B per 96 ns = 83.33 MB/s.
        assert throughput_of_slots(1, 16, 500e6, fmt) == \
            pytest.approx(8 / 96e-9)

    def test_slots_for_throughput_roundtrip(self, fmt):
        for slots in range(1, 17):
            rate = throughput_of_slots(slots, 16, 500e6, fmt)
            assert slots_for_throughput(rate, 16, 500e6, fmt) == slots

    def test_zero_throughput_one_slot(self, fmt):
        assert slots_for_throughput(0.0, 16, 500e6, fmt) == 1

    def test_over_capacity_raises(self, fmt):
        with pytest.raises(AllocationError):
            slots_for_throughput(5e9, 16, 500e6, fmt)

    @given(st.integers(1, 64), st.floats(1e6, 1.3e9))
    def test_slots_always_sufficient(self, table_size, rate):
        """The computed slot count guarantees at least the request."""
        fmt = WordFormat()
        try:
            slots = slots_for_throughput(rate, table_size, 500e6, fmt)
        except AllocationError:
            return
        assert throughput_of_slots(slots, table_size, 500e6, fmt) >= \
            rate * (1 - 1e-9)

    def test_gap_for_latency(self, fmt, short_path):
        # 500 MHz, same-router path: traversal 2 slots = 6 cycles.
        # 60 ns = 30 cycles; wait budget 24 cycles -> gap 8.
        gap = max_gap_for_latency(60.0, short_path, 16, 500e6, fmt)
        assert gap == 8

    def test_gap_infeasible_raises(self, fmt, short_path):
        with pytest.raises(AllocationError):
            max_gap_for_latency(10.0, short_path, 16, 500e6, fmt)

    def test_latency_bound_formula(self, fmt, short_path):
        # wait 4 slots + traversal 2 slots = 6 slots = 18 cycles = 36 ns.
        assert latency_bound_ns(4, short_path, 500e6, fmt) == \
            pytest.approx(36.0)


class TestChannelBounds:
    def _alloc(self, fmt, slots, latency=None, throughput=50 * MB):
        topo = single_router(2)
        path = make_path(topo, "ni0_0_0", ["r0_0"], "ni0_0_1")
        spec = ChannelSpec("c", "a", "b", throughput,
                           max_latency_ns=latency)
        return ChannelAllocation(spec=spec, path=path, slots=slots)

    def test_bounds_fields(self, fmt):
        ca = self._alloc(fmt, (0, 8))
        bounds = channel_bounds(ca, 16, 500e6, fmt)
        assert bounds.n_slots == 2
        assert bounds.worst_wait_slots == 8
        assert bounds.traversal_slots == 2
        assert bounds.latency_cycles == (8 + 2) * 3
        assert bounds.latency_ns == pytest.approx(60.0)

    def test_meets_flags(self, fmt):
        good = channel_bounds(self._alloc(fmt, (0, 4, 8, 12),
                                          latency=100.0), 16, 500e6, fmt)
        assert good.meets_latency and good.meets_throughput
        bad = channel_bounds(self._alloc(fmt, (0,), latency=40.0,
                                         throughput=300 * MB),
                             16, 500e6, fmt)
        assert not bad.meets_latency
        assert not bad.meets_throughput

    def test_latency_slack(self, fmt):
        bounds = channel_bounds(self._alloc(fmt, (0, 8), latency=100.0),
                                16, 500e6, fmt)
        assert bounds.latency_slack_ns == pytest.approx(40.0)

    def test_no_latency_requirement_always_met(self, fmt):
        bounds = channel_bounds(self._alloc(fmt, (0,)), 16, 500e6, fmt)
        assert bounds.meets_latency
        assert bounds.latency_slack_ns == float("inf")

    def test_summarise_empty(self):
        summary = summarise({})
        assert summary.n_channels == 0
        assert summary.all_requirements_met


class TestBuffers:
    def _pair(self, fmt):
        topo = mesh(2, 1, nis_per_router=1)
        forward_path = make_path(topo, "ni0_0_0", ["r0_0", "r1_0"],
                                 "ni1_0_0")
        reverse_path = make_path(topo, "ni1_0_0", ["r1_0", "r0_0"],
                                 "ni0_0_0")
        forward = ChannelAllocation(
            spec=ChannelSpec("f", "a", "b", 100 * MB),
            path=forward_path, slots=(0, 8))
        reverse = ChannelAllocation(
            spec=ChannelSpec("r", "b", "a", 10 * MB),
            path=reverse_path, slots=(4,))
        return forward, reverse

    def test_credit_loop_arithmetic(self, fmt):
        forward, reverse = self._pair(fmt)
        loop = credit_loop(forward, reverse, 16)
        assert loop.forward_slots == forward.path.traversal_slots
        assert loop.credit_wait_slots == 16  # single reverse slot
        assert loop.reverse_slots == reverse.path.traversal_slots
        assert loop.total_slots == (loop.forward_slots +
                                    loop.credit_wait_slots +
                                    loop.reverse_slots + 1)

    def test_rx_buffer_covers_loop(self, fmt):
        forward, reverse = self._pair(fmt)
        words = required_rx_buffer_words(forward, reverse, 16, fmt)
        loop = credit_loop(forward, reverse, 16)
        rotations = math.ceil(loop.total_slots / 16)
        assert words == (rotations * forward.n_slots + 1) * \
            fmt.payload_words_per_flit

    def test_tx_buffer_includes_burst(self, fmt):
        forward, _ = self._pair(fmt)
        base = required_tx_buffer_words(forward, fmt, burst_bytes=0)
        with_burst = required_tx_buffer_words(forward, fmt,
                                              burst_bytes=64)
        assert with_burst == base + 16  # 64 B = 16 words at 32-bit

    def test_credit_headroom(self, fmt):
        forward, reverse = self._pair(fmt)
        # 2 fwd slots * 2 payload words = 4 credits consumed/rotation;
        # 1 rev slot * 31 max credits = 31 returned: plenty.
        assert credit_headroom_ok(forward, reverse, 16, fmt)

    def test_mismatched_pair_rejected(self, fmt):
        forward, _ = self._pair(fmt)
        with pytest.raises(ConfigurationError):
            credit_loop(forward, forward, 16)
