"""Shared fixtures: small topologies, use cases and configurations."""

from __future__ import annotations

import pytest

from repro.core.application import Application, UseCase
from repro.core.configuration import NocConfiguration, configure
from repro.core.connection import MB, ChannelSpec
from repro.core.words import WordFormat
from repro.topology.builders import mesh, single_router
from repro.topology.mapping import Mapping


@pytest.fixture
def fmt() -> WordFormat:
    """The paper's default format: 32-bit words, 3-word flits."""
    return WordFormat()


@pytest.fixture
def tiny_config() -> NocConfiguration:
    """One router, two NIs, one channel each way, 8-slot table."""
    topo = single_router(2)
    channels = (
        ChannelSpec("a2b", "ipA", "ipB", 100 * MB, application="app"),
        ChannelSpec("b2a", "ipB", "ipA", 100 * MB, application="app"),
    )
    use_case = UseCase("tiny", (Application("app", channels),))
    mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni0_0_1"})
    return configure(topo, use_case, table_size=8, frequency_hz=500e6,
                     mapping=mapping)


@pytest.fixture
def mesh_config() -> NocConfiguration:
    """2x2 mesh with pipeline stages and three channels across it."""
    topo = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
    channels = (
        ChannelSpec("c0", "ipA", "ipB", 80 * MB, max_latency_ns=200.0,
                    application="appX"),
        ChannelSpec("c1", "ipB", "ipC", 80 * MB, max_latency_ns=200.0,
                    application="appX"),
        ChannelSpec("c2", "ipC", "ipA", 80 * MB, application="appY"),
    )
    use_case = UseCase("mesh", (
        Application("appX", channels[:2]),
        Application("appY", channels[2:]),
    ))
    mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0",
                       "ipC": "ni1_1_0"})
    return configure(topo, use_case, table_size=8, frequency_hz=500e6,
                     mapping=mapping)
