"""Tests for the best-effort baseline network."""

from __future__ import annotations

import pytest

from repro.baseline.arbitration import (FixedPriorityArbiter,
                                        RoundRobinArbiter)
from repro.baseline.be_network import BeNetworkSimulator
from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import ConfigurationError
from repro.simulation.traffic import (ConstantBitRate, PeriodicBurst,
                                      Saturating)
from repro.topology.builders import mesh, single_router
from repro.topology.mapping import Mapping, round_robin


class TestArbiters:
    def test_round_robin_rotates(self):
        arbiter = RoundRobinArbiter(3)
        grants = [arbiter.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_idle(self):
        arbiter = RoundRobinArbiter(3)
        assert arbiter.grant([False, False, True]) == 2
        assert arbiter.grant([True, False, True]) == 0

    def test_round_robin_none_when_idle(self):
        assert RoundRobinArbiter(2).grant([False, False]) is None

    def test_round_robin_bounded_wait(self):
        """No requester waits more than one full rotation."""
        arbiter = RoundRobinArbiter(4)
        waits = {i: 0 for i in range(4)}
        pending = {i: True for i in range(4)}
        for _ in range(16):
            winner = arbiter.grant([pending[i] for i in range(4)])
            for i in range(4):
                if pending[i] and i != winner:
                    waits[i] += 1
                    assert waits[i] <= 4
            waits[winner] = 0

    def test_fixed_priority_starves(self):
        arbiter = FixedPriorityArbiter(2)
        grants = [arbiter.grant([True, True]) for _ in range(5)]
        assert grants == [0] * 5

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinArbiter(2).grant([True])


def _two_router_config():
    topo = mesh(2, 1, nis_per_router=2)
    channels = (
        ChannelSpec("x0", "a0", "b0", 60 * MB, max_latency_ns=300.0,
                    application="appA"),
        ChannelSpec("x1", "a1", "b1", 60 * MB, max_latency_ns=300.0,
                    application="appB"),
    )
    use_case = UseCase("be", (
        Application("appA", channels[:1]),
        Application("appB", channels[1:])))
    mapping = Mapping({"a0": "ni0_0_0", "a1": "ni0_0_1",
                       "b0": "ni1_0_0", "b1": "ni1_0_1"})
    return configure(topo, use_case, table_size=8, frequency_hz=500e6,
                     mapping=mapping)


class TestBeNetwork:
    def test_delivers_everything_offered(self):
        config = _two_router_config()
        sim = BeNetworkSimulator(config)
        sim.set_traffic("x0", ConstantBitRate.from_rate(
            60 * MB, 500e6, config.fmt))
        sim.set_traffic("x1", ConstantBitRate.from_rate(
            60 * MB, 500e6, config.fmt))
        result = sim.run(2000)
        for name in ("x0", "x1"):
            deliveries = result.stats.channel(name).deliveries
            # ~2000 ticks * 6ns = 12 us at 60 MB/s and 8 B messages.
            assert len(deliveries) > 80

    def test_in_order_delivery(self):
        config = _two_router_config()
        sim = BeNetworkSimulator(config)
        sim.set_traffic("x0", Saturating(2, 3))
        result = sim.run(500)
        ids = [d.message_id
               for d in result.stats.channel("x0").deliveries]
        assert ids == sorted(ids)
        assert len(ids) > 100

    def test_multi_flit_packets_complete(self):
        config = _two_router_config()
        sim = BeNetworkSimulator(config, max_packet_flits=4)
        # 16-word messages: two 4-flit packets each.
        sim.set_traffic("x0", PeriodicBurst(1, 16, 40))
        result = sim.run(800)
        deliveries = result.stats.channel("x0").deliveries
        assert deliveries
        assert all(d.payload_bytes == 64 for d in deliveries)

    def test_contention_inflates_latency(self):
        """Two saturated channels sharing a link interfere."""
        config = _two_router_config()
        solo = BeNetworkSimulator(config)
        solo.set_traffic("x0", Saturating(2, 3))
        solo_result = solo.run(800)
        both = BeNetworkSimulator(config)
        both.set_traffic("x0", Saturating(2, 3))
        both.set_traffic("x1", Saturating(2, 3))
        both_result = both.run(800)
        solo_count = len(solo_result.stats.channel("x0").deliveries)
        both_count = len(both_result.stats.channel("x0").deliveries)
        # The shared link halves each channel's share.
        assert both_count < solo_count
        assert both_count >= int(0.4 * solo_count)

    def test_no_tdm_lower_idle_latency(self):
        """An uncontended BE flit beats the TDM slot wait on average."""
        config = _two_router_config()
        from repro.simulation.flitsim import FlitLevelSimulator
        pattern = ConstantBitRate.from_rate(20 * MB, 500e6, config.fmt,
                                            offset_cycles=1)
        be = BeNetworkSimulator(config)
        be.set_traffic("x0", pattern)
        be_result = be.run(1500)
        gs = FlitLevelSimulator(config)
        gs.set_traffic("x0", pattern)
        gs_result = gs.run(1500)
        be_mean = be_result.stats.channel("x0").latency_summary().mean
        gs_mean = gs_result.stats.channel("x0").latency_summary().mean
        assert be_mean < gs_mean

    def test_frequency_speeds_up_network(self):
        config = _two_router_config()
        results = {}
        for frequency in (500e6, 1000e6):
            sim = BeNetworkSimulator(config, frequency_hz=frequency)
            sim.set_traffic("x0", ConstantBitRate.from_rate(
                60 * MB, frequency, config.fmt))
            result = sim.run(1000)
            results[frequency] = \
                result.stats.channel("x0").latency_summary().mean
        assert results[1000e6] < results[500e6]

    def test_unknown_channel_rejected(self):
        config = _two_router_config()
        sim = BeNetworkSimulator(config)
        with pytest.raises(ConfigurationError):
            sim.set_traffic("nope", Saturating(2, 3))

    def test_invalid_parameters_rejected(self):
        config = _two_router_config()
        with pytest.raises(ConfigurationError):
            BeNetworkSimulator(config, buffer_flits=0)
        with pytest.raises(ConfigurationError):
            BeNetworkSimulator(config, max_packet_flits=0)
        with pytest.raises(ConfigurationError):
            BeNetworkSimulator(config).run(0)

    def test_wormhole_no_packet_interleaving(self):
        """Flits of two packets never interleave on one link.

        Uses a single-router config where both channels eject at the
        same NI: deliveries must alternate whole packets, never words
        of different packets.
        """
        topo = single_router(3)
        channels = (
            ChannelSpec("p0", "s0", "d", 50 * MB, application="a"),
            ChannelSpec("p1", "s1", "d", 50 * MB, application="a"),
        )
        use_case = UseCase("wh", (Application("a", channels),))
        mapping = Mapping({"s0": "ni0_0_0", "s1": "ni0_0_1",
                           "d": "ni0_0_2"})
        config = configure(topo, use_case, table_size=8,
                           frequency_hz=500e6, mapping=mapping)
        sim = BeNetworkSimulator(config, max_packet_flits=4)
        sim.set_traffic("p0", PeriodicBurst(1, 8, 20))
        sim.set_traffic("p1", PeriodicBurst(1, 8, 20, offset_cycles=3))
        result = sim.run(600)
        # Both channels' multi-flit messages all complete intact.
        for name in ("p0", "p1"):
            deliveries = result.stats.channel(name).deliveries
            assert deliveries
            assert all(d.payload_bytes == 32 for d in deliveries)
