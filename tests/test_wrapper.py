"""Tests for the asynchronous wrapper: firing, tokens, deadlock freedom."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.flits import Flit, FlitKind
from repro.core.words import WordFormat
from repro.simulation import DetailedNetwork
from repro.simulation.traffic import ConstantBitRate
from repro.wrapper.controller import PortInterfaceController
from repro.wrapper.port_interface import (InputPortInterface,
                                          OutputPortInterface, TokenChannel)


class TestPortInterfaces:
    def test_ipi_fifo_order(self, fmt):
        ipi = InputPortInterface("ipi", 3)
        a, b = Flit.empty(fmt), Flit.empty(fmt)
        ipi.push(a)
        ipi.push(b)
        assert ipi.pop() is a
        assert ipi.pop() is b

    def test_ipi_overflow_raises(self, fmt):
        ipi = InputPortInterface("ipi", 1)
        ipi.push(Flit.empty(fmt))
        with pytest.raises(SimulationError):
            ipi.push(Flit.empty(fmt))

    def test_ipi_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            InputPortInterface("ipi", 1).pop()

    def test_opi_early_reservation(self, fmt):
        opi = OutputPortInterface("opi", 2)
        assert opi.fireable
        opi.reserve()
        opi.reserve()
        assert not opi.fireable
        opi.deliver(Flit.empty(fmt))
        opi.send()
        assert opi.fireable  # space freed when the token left

    def test_opi_reserve_without_space_raises(self):
        opi = OutputPortInterface("opi", 1)
        opi.reserve()
        with pytest.raises(SimulationError):
            opi.reserve()

    def test_token_channel_respects_sink_capacity(self, fmt):
        opi = OutputPortInterface("opi", 4)
        ipi = InputPortInterface("ipi", 2)
        channel = TokenChannel("ch", opi, ipi, latency_ps=0)
        for _ in range(4):
            opi.reserve()
            opi.deliver(Flit.empty(fmt))
        channel.service(0)
        # Only 2 can be owned by the receiving side at once.
        assert len(ipi) == 2
        assert len(opi) == 2
        ipi.pop()
        channel.service(1)
        assert len(ipi) == 2

    def test_token_channel_latency(self, fmt):
        opi = OutputPortInterface("opi", 2)
        ipi = InputPortInterface("ipi", 2)
        channel = TokenChannel("ch", opi, ipi, latency_ps=100)
        opi.reserve()
        opi.deliver(Flit.empty(fmt))
        channel.service(0)
        assert len(ipi) == 0 and channel.in_flight == 1
        channel.service(99)
        assert len(ipi) == 0
        channel.service(100)
        assert len(ipi) == 1


class TestPIC:
    def test_fires_only_when_all_ready(self, fmt):
        ipis = [InputPortInterface(f"i{k}", 2) for k in range(2)]
        opis = [OutputPortInterface(f"o{k}", 2) for k in range(2)]
        pic = PortInterfaceController("pic", ipis, opis)
        assert not pic.can_fire
        ipis[0].push(Flit.empty(fmt))
        assert not pic.can_fire
        ipis[1].push(Flit.empty(fmt))
        assert pic.can_fire
        tokens = pic.fire()
        assert len(tokens) == 2
        assert pic.firings == 1

    def test_fire_not_ready_raises(self, fmt):
        pic = PortInterfaceController(
            "pic", [InputPortInterface("i", 2)],
            [OutputPortInterface("o", 2)])
        with pytest.raises(SimulationError):
            pic.fire()

    def test_blocking_ports_diagnostic(self, fmt):
        ipi = InputPortInterface("i0", 2)
        opi = OutputPortInterface("o0", 1)
        pic = PortInterfaceController("pic", [ipi], [opi])
        opi.reserve()
        assert set(pic.blocking_ports()) == {"i0", "o0"}


class TestWrappedNetwork:
    """End-to-end behaviour of a fully wrapped network."""

    def _run(self, config, ppm, horizon_slots=300, seed=1):
        traffic = {
            name: ConstantBitRate.from_rate(
                ca.spec.throughput_bytes_per_s, config.frequency_hz,
                config.fmt)
            for name, ca in config.allocation.channels.items()}
        net = DetailedNetwork(config, clocking="asynchronous",
                              traffic=traffic, horizon_slots=horizon_slots,
                              plesiochronous_ppm=ppm,
                              mesochronous_seed=seed)
        return net, net.run()

    def test_equal_clocks_fire_every_window(self, mesh_config):
        net, result = self._run(mesh_config, ppm=0.0)
        firings = set(result.wrapper_firings.values())
        slots = result.simulated_cycles // mesh_config.fmt.flit_size
        assert min(firings) >= slots - 2  # all elements keep pace

    def test_plesiochronous_runs_at_slowest_clock(self, mesh_config):
        net, result = self._run(mesh_config, ppm=5000.0)
        slowest = max(c.period_ps for c in net.domains.values())
        horizon_ps = result.simulated_cycles * slowest
        max_windows = horizon_ps // (slowest * mesh_config.fmt.flit_size)
        for firings in result.wrapper_firings.values():
            assert firings <= max_windows + 2
        # All elements advance in lock-step (flit synchronicity).
        values = sorted(result.wrapper_firings.values())
        assert values[-1] - values[0] <= 3

    def test_all_messages_delivered_in_order(self, mesh_config):
        net, result = self._run(mesh_config, ppm=2000.0)
        for name in mesh_config.allocation.channels:
            deliveries = result.stats.channel(name).deliveries
            assert deliveries, f"channel {name} delivered nothing"
            ids = [d.message_id for d in deliveries]
            assert ids == sorted(ids)

    def test_logical_schedule_matches_synchronous(self, mesh_config):
        """Wrapped and synchronous runs deliver the same flit sequences.

        Wall-clock timing differs (token pipelining), but per channel the
        sequence of (message id, delivery order) must be identical — the
        wrapper preserves the TDM schedule in logical time.
        """
        traffic = {
            name: ConstantBitRate.from_rate(
                ca.spec.throughput_bytes_per_s, mesh_config.frequency_hz,
                mesh_config.fmt)
            for name, ca in mesh_config.allocation.channels.items()}
        sync = DetailedNetwork(mesh_config, clocking="synchronous",
                               traffic=traffic, horizon_slots=300).run()
        net, wrapped = self._run(mesh_config, ppm=0.0)
        for name in mesh_config.allocation.channels:
            sync_ids = [d.message_id
                        for d in sync.stats.channel(name).deliveries]
            wrapped_ids = [d.message_id
                           for d in wrapped.stats.channel(name).deliveries]
            # The wrapped run may lag by a few messages at the horizon.
            n = min(len(sync_ids), len(wrapped_ids))
            assert n > 0
            assert sync_ids[:n] == wrapped_ids[:n]

    def test_initial_tokens_config_validated(self, fmt):
        from repro.router.synchronous import SynchronousRouter
        from repro.clocking.clock import ClockDomain
        from repro.wrapper.asynchronous import AsyncWrapper
        router = SynchronousRouter("r", 2, 2, fmt)
        clock = ClockDomain("c", period_ps=2000)
        with pytest.raises(ConfigurationError):
            AsyncWrapper("w", router, clock, fmt, is_ni=False,
                         ipi_capacity=2, initial_tokens=5)
