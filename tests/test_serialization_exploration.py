"""Tests for configuration serialisation and design-space exploration."""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import AllocationError, ConfigurationError
# Canonical home since the exploration helpers moved into the design
# subsystem (repro.core.exploration remains as a deprecated shim,
# covered by tests/test_design.py).
from repro.design.search import min_feasible_frequency, table_size_scan
from repro.core.serialization import (configuration_from_dict,
                                      configuration_to_dict,
                                      load_configuration,
                                      save_configuration)


class TestSerialization:
    def test_roundtrip_preserves_everything(self, mesh_config):
        data = configuration_to_dict(mesh_config)
        clone = configuration_from_dict(data)
        assert clone.table_size == mesh_config.table_size
        assert clone.frequency_hz == mesh_config.frequency_hz
        assert clone.fmt == mesh_config.fmt
        assert clone.topology.links == mesh_config.topology.links
        assert clone.mapping.ip_to_ni == mesh_config.mapping.ip_to_ni
        for name, ca in mesh_config.allocation.channels.items():
            other = clone.allocation.channel(name)
            assert other.slots == ca.slots
            assert other.path.routers == ca.path.routers
            assert other.spec == ca.spec

    def test_roundtrip_is_json_stable(self, mesh_config):
        data = configuration_to_dict(mesh_config)
        text = json.dumps(data, sort_keys=True)
        again = configuration_to_dict(configuration_from_dict(
            json.loads(text)))
        assert json.dumps(again, sort_keys=True) == text

    def test_bounds_identical_after_roundtrip(self, mesh_config):
        clone = configuration_from_dict(
            configuration_to_dict(mesh_config))
        original = {n: (b.latency_ns, b.throughput_bytes_per_s)
                    for n, b in mesh_config.bounds().items()}
        restored = {n: (b.latency_ns, b.throughput_bytes_per_s)
                    for n, b in clone.bounds().items()}
        assert original == restored

    def test_simulation_identical_after_roundtrip(self, mesh_config):
        from repro.simulation.flitsim import FlitLevelSimulator
        from repro.simulation.traffic import Saturating
        clone = configuration_from_dict(
            configuration_to_dict(mesh_config))
        traces = []
        for config in (mesh_config, clone):
            sim = FlitLevelSimulator(config)
            for name in config.allocation.channels:
                sim.set_traffic(name, Saturating(2, 3))
            traces.append({
                name: sim_result.trace.trace(name)
                for sim_result in [sim.run(300)]
                for name in config.allocation.channels})
        assert traces[0] == traces[1]

    def test_file_roundtrip(self, mesh_config, tmp_path):
        path = str(tmp_path / "config.json")
        save_configuration(mesh_config, path)
        clone = load_configuration(path)
        assert clone.table_size == mesh_config.table_size
        assert set(clone.allocation.channels) == \
            set(mesh_config.allocation.channels)

    def test_unknown_version_rejected(self, mesh_config):
        data = configuration_to_dict(mesh_config)
        data["format_version"] = 999
        with pytest.raises(ConfigurationError):
            configuration_from_dict(data)

    def test_corrupted_allocation_rejected(self, mesh_config):
        data = configuration_to_dict(mesh_config)
        data["allocation"]["ghost"] = {"routers": ["r0_0"], "slots": [0]}
        with pytest.raises(ConfigurationError):
            configuration_from_dict(data)

    def test_contention_detected_on_load(self, mesh_config):
        """Tampered slot tables fail validation when loading."""
        data = configuration_to_dict(mesh_config)
        channels = sorted(data["allocation"])
        first = data["allocation"][channels[0]]
        second = data["allocation"][channels[1]]
        # Force both channels onto identical paths/slots only if their
        # sources match; otherwise overlap their injection slots via a
        # shared link is not guaranteed, so instead just duplicate the
        # slots of one channel into another on the same source NI when
        # possible — fall back to checking that *some* tamper fails.
        second["slots"] = list(first["slots"]) + list(second["slots"])
        with pytest.raises((ConfigurationError, AllocationError,
                            Exception)):
            configuration_from_dict(data)


class TestExploration:
    def test_min_frequency_found(self, mesh_config):
        frequency = min_feasible_frequency(
            mesh_config.topology, mesh_config.use_case,
            mesh_config.mapping, table_size=8)
        # The fixture allocates at 500 MHz, so the minimum is at most
        # that; and the requirements make 100 MHz insufficient... or
        # not — assert only the contract: feasible at the result.
        from repro.core.configuration import configure
        config = configure(mesh_config.topology, mesh_config.use_case,
                           table_size=8, frequency_hz=frequency,
                           mapping=mesh_config.mapping)
        assert config.summary().all_requirements_met
        assert frequency <= 500e6 + 10e6

    def test_min_frequency_monotone_contract(self, mesh_config):
        """Slightly below the minimum must be infeasible (if > low)."""
        frequency = min_feasible_frequency(
            mesh_config.topology, mesh_config.use_case,
            mesh_config.mapping, table_size=8, low_hz=50e6,
            tolerance_hz=5e6)
        if frequency > 55e6:
            from repro.core.configuration import configure
            with pytest.raises(AllocationError):
                configure(mesh_config.topology, mesh_config.use_case,
                          table_size=8, frequency_hz=frequency * 0.8,
                          mapping=mesh_config.mapping)

    def test_infeasible_raises(self, mesh_config):
        scaled = type(mesh_config.use_case)(
            "impossible",
            tuple(type(app)(app.name, tuple(
                ch.scaled(1000.0) for ch in app.channels))
                for app in mesh_config.use_case.applications))
        with pytest.raises(AllocationError):
            min_feasible_frequency(
                mesh_config.topology, scaled, mesh_config.mapping,
                table_size=8, high_hz=1e9)

    def test_bad_interval_rejected(self, mesh_config):
        with pytest.raises(ConfigurationError):
            min_feasible_frequency(
                mesh_config.topology, mesh_config.use_case,
                mesh_config.mapping, table_size=8, low_hz=1e9,
                high_hz=1e8)

    def test_table_size_scan(self, mesh_config):
        results = table_size_scan(
            mesh_config.topology, mesh_config.use_case,
            mesh_config.mapping, frequency_hz=500e6,
            table_sizes=[8, 16, 32])
        assert len(results) == 3
        feasible = [r for r in results if r.feasible]
        assert feasible
        for result in feasible:
            assert result.mean_latency_bound_ns is not None
            assert result.mean_link_utilisation is not None
        # Larger tables lower utilisation (same slots of more).
        utils = [r.mean_link_utilisation for r in feasible]
        assert utils == sorted(utils, reverse=True)


class TestTableSizeScanSection7Mesh:
    """Table-size scan on the Section VII topology (4x3 cmesh, 4 NIs).

    Six bandwidth-only channels fan out of one NI, so any table smaller
    than six slots cannot even serialise the injection link — the scan
    must report that corner infeasible and, once the table is large
    enough, stay feasible for every larger size (feasibility of a
    bandwidth-only workload is monotone in table size).
    """

    @pytest.fixture(scope="class")
    def scan(self):
        from repro.core.application import Application, UseCase
        from repro.core.connection import MB, ChannelSpec
        from repro.topology.builders import concentrated_mesh
        from repro.topology.mapping import Mapping

        topology = concentrated_mesh(4, 3, nis_per_router=4)
        nis = topology.nis
        channels = tuple(
            ChannelSpec(f"fan{i}", "hub", f"leaf{i}", 40 * MB,
                        application="fan")
            for i in range(6))
        use_case = UseCase("fanout", (Application("fan", channels),))
        mapping = Mapping({"hub": nis[0], **{
            f"leaf{i}": nis[i + 1] for i in range(6)}})
        return table_size_scan(topology, use_case, mapping,
                               frequency_hz=500e6,
                               table_sizes=[4, 8, 16, 32, 64])

    def test_feasibility_is_monotone_in_table_size(self, scan):
        flags = [r.feasible for r in scan]
        assert flags[0] is False  # 4 slots < 6 channels on one NI link
        assert True in flags
        # Once feasible, never infeasible again at a larger size.
        assert flags == sorted(flags)

    def test_bound_quality_fields(self, scan):
        for result in scan:
            if not result.feasible:
                assert result.mean_latency_bound_ns is None
                assert result.max_latency_bound_ns is None
                assert result.mean_link_utilisation is None
            else:
                assert result.mean_latency_bound_ns is not None
                assert result.max_latency_bound_ns >= \
                    result.mean_latency_bound_ns > 0
                assert 0 < result.mean_link_utilisation <= 1
        # Larger tables spread the same demand thinner.
        utils = [r.mean_link_utilisation for r in scan if r.feasible]
        assert utils == sorted(utils, reverse=True)
        # Longer rotations worsen the worst-case wait, so latency
        # bounds grow with the table.
        latencies = [r.max_latency_bound_ns for r in scan if r.feasible]
        assert latencies == sorted(latencies)
