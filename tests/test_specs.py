"""Tests for channel/connection/application/use-case specifications."""

from __future__ import annotations

import pytest

from repro.core.application import Application, UseCase
from repro.core.connection import GB, MB, NS, US, ChannelSpec, ConnectionSpec
from repro.core.exceptions import ConfigurationError


class TestChannelSpec:
    def test_valid_spec(self):
        spec = ChannelSpec("c", "a", "b", 100 * MB, max_latency_ns=50.0)
        assert spec.throughput_bytes_per_s == 100e6

    def test_unit_helpers(self):
        assert MB == 1e6 and GB == 1e9
        assert NS == 1e-9 and US == 1e-6

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelSpec("c", "a", "a", 1 * MB)

    def test_negative_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelSpec("c", "a", "b", -1.0)

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelSpec("c", "a", "b", 1 * MB, max_latency_ns=0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelSpec("", "a", "b", 1 * MB)

    def test_scaled(self):
        spec = ChannelSpec("c", "a", "b", 100 * MB)
        assert spec.scaled(2.0).throughput_bytes_per_s == 200e6
        assert spec.throughput_bytes_per_s == 100e6

    def test_dict_roundtrip(self):
        spec = ChannelSpec("c", "a", "b", 100 * MB, max_latency_ns=55.0,
                           application="app", burst_bytes=32)
        assert ChannelSpec.from_dict(spec.to_dict()) == spec

    def test_dict_roundtrip_no_latency(self):
        spec = ChannelSpec("c", "a", "b", 100 * MB)
        assert ChannelSpec.from_dict(spec.to_dict()) == spec


class TestConnectionSpec:
    def test_forward_only(self):
        conn = ConnectionSpec("x", ChannelSpec("f", "a", "b", 1 * MB))
        assert conn.channels == (conn.forward,)

    def test_reverse_must_mirror(self):
        forward = ChannelSpec("f", "a", "b", 1 * MB)
        wrong = ChannelSpec("r", "a", "b", 1 * MB)
        with pytest.raises(ConfigurationError):
            ConnectionSpec("x", forward, wrong)

    def test_with_credit_return(self):
        forward = ChannelSpec("f", "a", "b", 100 * MB, application="app")
        conn = ConnectionSpec("x", forward).with_credit_return()
        assert conn.reverse is not None
        assert conn.reverse.src_ip == "b"
        assert conn.reverse.dst_ip == "a"
        assert conn.reverse.application == "app"
        assert conn.reverse.throughput_bytes_per_s == \
            pytest.approx(5 * MB)

    def test_with_credit_return_idempotent(self):
        forward = ChannelSpec("f", "a", "b", 1 * MB)
        conn = ConnectionSpec("x", forward).with_credit_return()
        assert conn.with_credit_return() is conn


class TestApplicationAndUseCase:
    def test_duplicate_channel_rejected(self):
        spec = ChannelSpec("c", "a", "b", 1 * MB)
        with pytest.raises(ConfigurationError):
            Application("app", (spec, spec))

    def test_wrong_application_tag_rejected(self):
        spec = ChannelSpec("c", "a", "b", 1 * MB, application="other")
        with pytest.raises(ConfigurationError):
            Application("app", (spec,))

    def test_application_aggregates(self):
        app = Application("app", (
            ChannelSpec("c1", "a", "b", 10 * MB, application="app"),
            ChannelSpec("c2", "b", "c", 20 * MB, application="app")))
        assert app.total_throughput_bytes_per_s == pytest.approx(30e6)
        assert app.ips == ("a", "b", "c")
        assert app.channel("c1").name == "c1"
        with pytest.raises(ConfigurationError):
            app.channel("missing")

    def test_use_case_unique_channels_across_apps(self):
        spec_a = ChannelSpec("c", "a", "b", 1 * MB, application="x")
        spec_b = ChannelSpec("c", "c", "d", 1 * MB, application="y")
        with pytest.raises(ConfigurationError):
            UseCase("uc", (Application("x", (spec_a,)),
                           Application("y", (spec_b,))))

    def test_subset(self):
        apps = (
            Application("x", (ChannelSpec("c1", "a", "b", 1 * MB,
                                          application="x"),)),
            Application("y", (ChannelSpec("c2", "c", "d", 1 * MB,
                                          application="y"),)),
        )
        uc = UseCase("uc", apps)
        sub = uc.subset(["x"])
        assert [a.name for a in sub.applications] == ["x"]
        assert len(sub.channels) == 1
        with pytest.raises(ConfigurationError):
            uc.subset(["nope"])

    def test_application_of(self):
        uc = UseCase("uc", (Application("x", (
            ChannelSpec("c1", "a", "b", 1 * MB, application="x"),)),))
        assert uc.application_of("c1") == "x"
        with pytest.raises(ConfigurationError):
            uc.application_of("missing")
