"""Unit and property tests for slot tables and slot arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.slot_table import (SlotTable, ideal_positions,
                                   max_consecutive_gap, shifted,
                                   shifted_slots, spread_slots,
                                   worst_case_wait_slots)


class TestShift:
    def test_wraps_modulo_size(self):
        assert shifted(7, 3, 8) == 2

    def test_zero_shift_identity(self):
        assert shifted(5, 0, 8) == 5

    def test_shifted_slots_set(self):
        assert shifted_slots({0, 7}, 1, 8) == frozenset({1, 0})

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            shifted(0, 1, 0)


class TestGaps:
    def test_single_slot_gap_is_table_size(self):
        assert max_consecutive_gap([3], 8) == 8

    def test_adjacent_slots(self):
        assert max_consecutive_gap([0, 1, 2, 3, 4, 5, 6, 7], 8) == 1

    def test_wraparound_gap(self):
        # Slots 0 and 2 in size 8: gaps 2 and 6 (wrap).
        assert max_consecutive_gap([0, 2], 8) == 6

    def test_empty_reservation_rejected(self):
        with pytest.raises(AllocationError):
            max_consecutive_gap([], 8)

    def test_out_of_range_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            max_consecutive_gap([9], 8)

    @given(st.sets(st.integers(0, 15), min_size=1, max_size=16))
    def test_matches_brute_force_wait(self, slots):
        """The max gap equals the worst over arrival phases of the wait."""
        size = 16
        worst = 0
        for arrival in range(size):
            # A message arriving during slot `arrival` catches the next
            # reserved slot strictly after it.
            wait = next(d for d in range(1, size + 1)
                        if (arrival + d) % size in slots)
            worst = max(worst, wait)
        assert worst_case_wait_slots(slots, size) == worst


class TestIdealPositions:
    def test_evenly_spread(self):
        assert ideal_positions(4, 16) == [0, 4, 8, 12]

    def test_rounding(self):
        assert ideal_positions(3, 8) == [0, 3, 5]

    def test_zero(self):
        assert ideal_positions(0, 8) == []


class TestSpreadSlots:
    def test_exact_when_all_free(self):
        chosen = spread_slots(range(16), 4, 16)
        assert chosen is not None
        assert max_consecutive_gap(chosen, 16) == 4

    def test_insufficient_free(self):
        assert spread_slots([1, 2], 3, 16) is None

    def test_respects_max_gap_by_adding_slots(self):
        chosen = spread_slots(range(16), 2, 16, max_gap=4)
        assert chosen is not None
        assert len(chosen) >= 4
        assert max_consecutive_gap(chosen, 16) <= 4

    def test_max_gap_infeasible(self):
        # Free slots clustered: a gap of 2 cannot be met.
        assert spread_slots([0, 1, 2], 2, 16, max_gap=4) is None

    @given(st.data())
    def test_properties(self, data):
        size = data.draw(st.integers(4, 32))
        free = data.draw(st.sets(st.integers(0, size - 1), min_size=1,
                                 max_size=size))
        n = data.draw(st.integers(1, len(free)))
        chosen = spread_slots(free, n, size)
        assert chosen is not None
        assert len(chosen) == n
        assert set(chosen) <= set(free)
        assert list(chosen) == sorted(set(chosen))

    @given(st.data())
    def test_gap_constraint_honoured_when_satisfied(self, data):
        size = data.draw(st.integers(4, 24))
        free = data.draw(st.sets(st.integers(0, size - 1), min_size=2,
                                 max_size=size))
        n = data.draw(st.integers(1, len(free)))
        max_gap = data.draw(st.integers(1, size))
        chosen = spread_slots(free, n, size, max_gap=max_gap)
        if chosen is not None:
            assert max_consecutive_gap(chosen, size) <= max_gap
        else:
            # Verify infeasibility: even using *all* free slots the gap
            # constraint fails (spread_slots may add slots beyond n).
            assert max_consecutive_gap(free, size) > max_gap


class TestSlotTable:
    def test_reserve_and_query(self):
        table = SlotTable(8)
        table.reserve(3, "ch")
        assert table.owner(3) == "ch"
        assert not table.is_free(3)
        assert table.reserved_slots("ch") == frozenset({3})

    def test_conflict_raises(self):
        table = SlotTable(8)
        table.reserve(3, "a")
        with pytest.raises(AllocationError):
            table.reserve(3, "b")

    def test_same_owner_reserve_idempotent(self):
        table = SlotTable(8)
        table.reserve(3, "a")
        table.reserve(3, "a")
        assert table.reserved_slots("a") == frozenset({3})

    def test_reserve_all_rolls_back_on_conflict(self):
        table = SlotTable(8)
        table.reserve(2, "other")
        with pytest.raises(AllocationError):
            table.reserve_all([0, 1, 2], "mine")
        assert table.reserved_slots("mine") == frozenset()
        assert table.owner(2) == "other"

    def test_release_owner(self):
        table = SlotTable(8)
        table.reserve_all([1, 4, 6], "a")
        table.reserve(2, "b")
        table.release_owner("a")
        assert table.reserved_slots("a") == frozenset()
        assert table.owner(2) == "b"

    def test_utilisation(self):
        table = SlotTable(8)
        table.reserve_all([0, 1], "a")
        assert table.utilisation() == pytest.approx(0.25)

    def test_free_slots(self):
        table = SlotTable(4)
        table.reserve(1, "x")
        assert table.free_slots() == frozenset({0, 2, 3})

    def test_iteration_order(self):
        table = SlotTable(3, {2: "c", 0: "a"})
        assert list(table) == [(0, "a"), (1, None), (2, "c")]

    def test_copy_is_independent(self):
        table = SlotTable(4, {0: "a"})
        clone = table.copy()
        clone.reserve(1, "b")
        assert table.is_free(1)

    def test_dict_roundtrip(self):
        table = SlotTable(6, {0: "a", 5: "b"})
        assert SlotTable.from_dict(table.to_dict()) == table

    def test_bad_slot_rejected(self):
        table = SlotTable(4)
        with pytest.raises(ConfigurationError):
            table.reserve(4, "x")

    def test_empty_owner_rejected(self):
        table = SlotTable(4)
        with pytest.raises(ConfigurationError):
            table.reserve(0, "")

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotTable(0)
