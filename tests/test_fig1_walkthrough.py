"""The paper's Figure 1 scenario, reproduced exactly.

Two connections through a two-router network with a 4-slot table:
cA reserves slots {0, 2}, cB reserves slot {1}.  For every hop the
reservation shifts one slot, so on the shared link cA occupies slots
{1, 3} and cB slot {2} — never colliding, which both the allocator's
validation and a contention-checked simulation confirm.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import Allocation, ChannelAllocation
from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.core.path import make_path
from repro.core.slot_table import shifted
from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.traffic import Saturating
from repro.topology.builders import custom
from repro.topology.mapping import Mapping


@pytest.fixture
def figure1():
    topo = custom(
        router_edges=[("rl", "rr"), ("rr", "rl")],
        nis=[("ni_a", "rl"), ("ni_b", "rr"), ("ni_c", "rl")])
    spec_a = ChannelSpec("cA", "ipA", "ipB", 100 * MB,
                         application="fig1")
    spec_b = ChannelSpec("cB", "ipC", "ipB", 50 * MB, application="fig1")
    mapping = Mapping({"ipA": "ni_a", "ipB": "ni_b", "ipC": "ni_c"})
    # Hand-build the exact reservation of the figure.
    allocation = Allocation(topo, table_size=4, frequency_hz=500e6,
                            fmt=__import__("repro.core.words",
                                           fromlist=["WordFormat"]
                                           ).WordFormat())
    path_a = make_path(topo, "ni_a", ["rl", "rr"], "ni_b")
    path_b = make_path(topo, "ni_c", ["rl", "rr"], "ni_b")
    allocation.commit(ChannelAllocation(spec=spec_a, path=path_a,
                                        slots=(0, 2)))
    allocation.commit(ChannelAllocation(spec=spec_b, path=path_b,
                                        slots=(1,)))
    return topo, spec_a, spec_b, mapping, allocation


class TestFigure1:
    def test_shifted_reservations_match_figure(self, figure1):
        """The figure's tables: cA {0,2} -> {1,3} -> {2,0}; cB {1} -> {2} -> {3}."""
        _, _, _, _, allocation = figure1
        ca = allocation.channel("cA")
        link_slots = ca.link_slots(4)
        assert link_slots[("ni_a", "rl")] == frozenset({0, 2})
        assert link_slots[("rl", "rr")] == frozenset({1, 3})
        assert link_slots[("rr", "ni_b")] == frozenset({2, 0})
        cb = allocation.channel("cB")
        cb_slots = cb.link_slots(4)
        assert cb_slots[("ni_c", "rl")] == frozenset({1})
        assert cb_slots[("rl", "rr")] == frozenset({2})
        assert cb_slots[("rr", "ni_b")] == frozenset({3})

    def test_no_contention_on_shared_links(self, figure1):
        _, _, _, _, allocation = figure1
        allocation.validate()  # raises on any overlap

    def test_shared_link_union_is_disjoint(self, figure1):
        _, _, _, _, allocation = figure1
        table = allocation.link_tables[("rl", "rr")]
        assert table.owner(1) == "cA"
        assert table.owner(3) == "cA"
        assert table.owner(2) == "cB"
        assert table.owner(0) is None

    def test_simulation_confirms_figure(self, figure1):
        topo, spec_a, spec_b, mapping, allocation = figure1
        use_case = UseCase("fig1", (Application("fig1",
                                                (spec_a, spec_b)),))
        from repro.core.configuration import NocConfiguration
        config = NocConfiguration(
            topology=topo, use_case=use_case, mapping=mapping,
            allocation=allocation, table_size=4, frequency_hz=500e6,
            fmt=allocation.fmt)
        sim = FlitLevelSimulator(config, check_contention=True)
        sim.set_traffic("cA", Saturating(2, 3))
        sim.set_traffic("cB", Saturating(2, 3))
        result = sim.run(40)
        # cA gets half the slots, cB a quarter.
        assert len(result.stats.channel("cA").deliveries) == 20
        assert len(result.stats.channel("cB").deliveries) == 10

    def test_allocator_reproduces_equivalent_schedule(self, figure1):
        """The automatic flow finds a contention-free 4-slot schedule.

        With cA requesting half the link capacity and cB a quarter, the
        allocator must find the figure's 2-plus-1 slot split.
        """
        topo, _, _, mapping, _ = figure1
        spec_a = ChannelSpec("cA", "ipA", "ipB", 400 * MB,
                             application="fig1")
        spec_b = ChannelSpec("cB", "ipC", "ipB", 200 * MB,
                             application="fig1")
        use_case = UseCase("fig1", (Application("fig1",
                                                (spec_a, spec_b)),))
        config = configure(topo, use_case, table_size=4,
                           frequency_hz=500e6, mapping=mapping)
        config.allocation.validate()
        assert config.allocation.channel("cA").n_slots == 2
        assert config.allocation.channel("cB").n_slots == 1
