"""Integration tests across topologies and clocking variants.

Exercises the full flow (allocate → simulate → verify) on topologies
beyond the mesh fixtures: multi-stage pipelined links, rings, tori, and
a concentrated mesh under all three clocking schemes.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import analyse
from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.simulation.cyclesim import DetailedNetwork
from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.traffic import ConstantBitRate
from repro.topology.builders import concentrated_mesh, mesh, ring, torus
from repro.topology.mapping import Mapping, round_robin


def _simple_use_case(ips, n_channels, rate=40 * MB, latency=None):
    channels = tuple(
        ChannelSpec(f"c{i}", ips[i % len(ips)],
                    ips[(i + len(ips) // 2) % len(ips)], rate,
                    max_latency_ns=latency, application="app")
        for i in range(n_channels))
    return UseCase("it", (Application("app", channels),))


def _traffic(config):
    return {name: ConstantBitRate.from_rate(
        ca.spec.throughput_bytes_per_s, config.frequency_hz, config.fmt,
        offset_cycles=i)
        for i, (name, ca) in enumerate(
            sorted(config.allocation.channels.items()))}


class TestMultiStageLinks:
    @pytest.mark.parametrize("stages", [2, 3])
    def test_multi_stage_mesochronous_links(self, stages):
        """Chains of link pipeline stages keep flit synchronicity."""
        topo = mesh(2, 1, nis_per_router=1, pipeline_stages=stages)
        ips = ["ipA", "ipB"]
        use_case = _simple_use_case(ips, 2, rate=60 * MB)
        mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0"})
        config = configure(topo, use_case, table_size=8,
                           frequency_hz=500e6, mapping=mapping)
        traffic = _traffic(config)
        flit = FlitLevelSimulator(config)
        for name, pattern in traffic.items():
            flit.set_traffic(name, pattern)
        fres = flit.run(300)
        detailed = DetailedNetwork(config, clocking="mesochronous",
                                   traffic=traffic, horizon_slots=300,
                                   mesochronous_seed=5)
        dres = detailed.run()
        # Multi-stage chains must not change the logical schedule.
        for name in config.allocation.channels:
            f = [(d.message_id, d.latency_ns)
                 for d in fres.stats.channel(name).deliveries]
            d = {x.message_id: x.latency_ns
                 for x in dres.stats.channel(name).deliveries}
            assert len(d) > 5
            cycle_ns = 1e9 / config.frequency_hz
            for mid, latency in f:
                if mid in d:
                    assert abs(d[mid] - latency) <= cycle_ns
        # Every FIFO in every chain stays within the 4-word sizing.
        assert max(dres.fifo_max_occupancy.values()) <= 4

    def test_stage_count_raises_bound(self):
        """More stages -> strictly larger latency bound (1 slot each)."""
        bounds = []
        for stages in (1, 2, 3):
            topo = mesh(2, 1, nis_per_router=1, pipeline_stages=stages)
            use_case = _simple_use_case(["ipA", "ipB"], 1)
            mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0"})
            config = configure(topo, use_case, table_size=8,
                               frequency_hz=500e6, mapping=mapping)
            bounds.append(analyse(config.allocation)["c0"].latency_ns)
        assert bounds[1] - bounds[0] == pytest.approx(6.0)  # one slot
        assert bounds[2] - bounds[1] == pytest.approx(6.0)


class TestAlternativeTopologies:
    def test_ring_allocates_and_simulates(self):
        topo = ring(5, nis_per_router=1)
        ips = [f"ip{i}" for i in range(5)]
        mapping = round_robin(ips, topo)
        use_case = _simple_use_case(ips, 5, rate=30 * MB)
        config = configure(topo, use_case, table_size=16,
                           frequency_hz=500e6, mapping=mapping)
        config.allocation.validate()
        sim = FlitLevelSimulator(config, check_contention=True)
        for name, pattern in _traffic(config).items():
            sim.set_traffic(name, pattern)
        result = sim.run(600)
        for name in config.allocation.channels:
            assert result.stats.channel(name).deliveries

    def test_torus_wraparound_paths_used(self):
        topo = torus(3, 3, nis_per_router=1)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni2_2_0"})
        use_case = UseCase("t", (Application("app", (
            ChannelSpec("c", "a", "b", 40 * MB, application="app"),)),))
        config = configure(topo, use_case, table_size=8,
                           frequency_hz=500e6, mapping=mapping)
        # On a 3x3 torus the wraparound makes this a 2-hop route,
        # against 4 hops on a mesh.
        assert config.allocation.channel("c").path.n_routers <= 3

    def test_concentrated_mesh_detailed_sync(self):
        """The paper's topology class runs end-to-end in the word-level
        model."""
        topo = concentrated_mesh(2, 2, nis_per_router=2)
        ips = [f"ip{i}" for i in range(8)]
        mapping = round_robin(ips, topo)
        use_case = _simple_use_case(ips, 6, rate=50 * MB)
        config = configure(topo, use_case, table_size=16,
                           frequency_hz=500e6, mapping=mapping)
        traffic = _traffic(config)
        detailed = DetailedNetwork(config, clocking="synchronous",
                                   traffic=traffic, horizon_slots=300)
        result = detailed.run()
        bounds = analyse(config.allocation)
        for name in config.allocation.channels:
            deliveries = result.stats.channel(name).deliveries
            assert deliveries
            worst = max(d.latency_ns for d in deliveries)
            assert worst <= bounds[name].latency_ns + 1e-9

    def test_concentrated_mesh_async_wrappers(self):
        topo = concentrated_mesh(2, 2, nis_per_router=2)
        ips = [f"ip{i}" for i in range(8)]
        mapping = round_robin(ips, topo)
        use_case = _simple_use_case(ips, 4, rate=40 * MB)
        config = configure(topo, use_case, table_size=16,
                           frequency_hz=500e6, mapping=mapping)
        detailed = DetailedNetwork(config, clocking="asynchronous",
                                   traffic=_traffic(config),
                                   horizon_slots=250,
                                   plesiochronous_ppm=1000.0)
        result = detailed.run()
        for name in config.allocation.channels:
            deliveries = result.stats.channel(name).deliveries
            assert deliveries
            ids = [d.message_id for d in deliveries]
            assert ids == sorted(ids)
        firings = sorted(result.wrapper_firings.values())
        assert firings[-1] - firings[0] <= 4  # lock-step
