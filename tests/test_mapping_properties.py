"""Property tests for the IP-to-NI mapping heuristics.

The satellite contracts of the design subsystem:

* :func:`round_robin` and :func:`traffic_balanced` always produce
  ``Mapping.validate``-clean mappings on every builder family (mesh,
  concentrated mesh, torus, ring) across seeds;
* :func:`traffic_balanced` never does worse than :func:`round_robin`
  on total hop-weighted demand (guaranteed by construction: the better
  of the greedy-balanced and round-robin seeds is refined by
  improvement-only swaps).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.connection import MB, ChannelSpec
from repro.topology.builders import concentrated_mesh, mesh, ring, torus
from repro.topology.mapping import (Mapping, hop_weighted_demand,
                                    round_robin, router_distances,
                                    traffic_balanced)

TOPOLOGIES = {
    "mesh": lambda: mesh(3, 2, nis_per_router=2),
    "cmesh": lambda: concentrated_mesh(3, 3, nis_per_router=4),
    "torus": lambda: torus(3, 3, nis_per_router=1),
    "ring": lambda: ring(5, nis_per_router=2),
}


def _random_channels(rng: random.Random, ips: list[str],
                     n_channels: int) -> list[ChannelSpec]:
    channels = []
    for index in range(n_channels):
        src, dst = rng.sample(ips, 2)
        channels.append(ChannelSpec(
            f"c{index}", src, dst,
            rng.uniform(1.0, 200.0) * MB,
            application="app"))
    return channels


@pytest.mark.parametrize("family", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 1, 7, 42, 2009])
class TestMappingHeuristicProperties:
    def _setup(self, family, seed):
        topo = TOPOLOGIES[family]()
        rng = random.Random(seed)
        n_ips = rng.randint(2, 2 * len(topo.nis))
        ips = [f"ip{i}" for i in range(n_ips)]
        channels = _random_channels(rng, ips, rng.randint(1, 3 * n_ips)) \
            if n_ips >= 2 else []
        return topo, ips, channels

    def test_round_robin_validates(self, family, seed):
        topo, ips, _ = self._setup(family, seed)
        mapping = round_robin(ips, topo)
        mapping.validate(topo)
        assert set(mapping.ips) == set(ips)

    def test_traffic_balanced_validates(self, family, seed):
        topo, ips, channels = self._setup(family, seed)
        mapping = traffic_balanced(ips, channels, topo)
        mapping.validate(topo)
        assert set(mapping.ips) == set(ips)

    def test_traffic_balanced_never_worse_than_round_robin(
            self, family, seed):
        topo, ips, channels = self._setup(family, seed)
        distances = router_distances(topo)
        balanced = hop_weighted_demand(
            topo, traffic_balanced(ips, channels, topo), channels,
            distances=distances)
        rr = hop_weighted_demand(topo, round_robin(ips, topo), channels,
                                 distances=distances)
        assert balanced <= rr + 1e-6


class TestTrafficBalancedStructure:
    def test_deterministic(self):
        topo = mesh(3, 3, nis_per_router=2)
        rng = random.Random(13)
        ips = [f"ip{i}" for i in range(12)]
        channels = _random_channels(rng, ips, 20)
        first = traffic_balanced(ips, channels, topo)
        second = traffic_balanced(ips, channels, topo)
        assert first.ip_to_ni == second.ip_to_ni

    def test_counts_stay_balanced(self):
        """Swap-only refinement preserves the seeding phase's counts."""
        topo = mesh(2, 1, nis_per_router=1)
        rng = random.Random(3)
        ips = [f"ip{i}" for i in range(6)]
        channels = _random_channels(rng, ips, 8)
        mapping = traffic_balanced(ips, channels, topo)
        counts = [len(mapping.ips_of(ni)) for ni in topo.nis]
        assert max(counts) - min(counts) <= 1

    def test_no_channels_still_validates(self):
        """Weightless IPs have no demand to balance or refine."""
        topo = ring(4, nis_per_router=1)
        ips = [f"ip{i}" for i in range(8)]
        mapping = traffic_balanced(ips, [], topo)
        mapping.validate(topo)
        assert set(mapping.ips) == set(ips)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_ips=st.integers(min_value=2, max_value=20),
       n_channels=st.integers(min_value=1, max_value=30))
def test_hop_weighted_demand_nonnegative_and_stable(seed, n_ips,
                                                    n_channels):
    topo = mesh(3, 2, nis_per_router=2)
    rng = random.Random(seed)
    ips = [f"ip{i}" for i in range(n_ips)]
    channels = _random_channels(rng, ips, n_channels)
    mapping = round_robin(ips, topo)
    demand = hop_weighted_demand(topo, mapping, channels)
    assert demand >= 0.0
    assert demand == hop_weighted_demand(topo, mapping, channels)
    # Co-locating everything on one NI zeroes the metric.
    single = Mapping({ip: topo.nis[0] for ip in ips})
    assert hop_weighted_demand(topo, single, channels) == 0.0
