"""Tests for the Section VII use-case generator and runners."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.usecase.generator import (Section7Parameters,
                                     generate_section7)
from repro.usecase.runner import (be_frequency_sweep, burst_traffic,
                                  cbr_traffic, configure_section7, run_be,
                                  run_gs, service_latencies_ns)


@pytest.fixture(scope="module")
def section7_small():
    """A reduced instance (fast) that keeps the paper's structure."""
    params = Section7Parameters(seed=7, connections_per_application=12,
                                n_ips=40)
    instance = generate_section7(params)
    return configure_section7(instance)


class TestGenerator:
    def test_paper_scale_defaults(self):
        params = Section7Parameters()
        assert params.n_connections == 200
        assert params.n_ips == 70
        assert (params.cols, params.rows, params.nis_per_router) == \
            (4, 3, 4)

    def test_deterministic_per_seed(self):
        a = generate_section7(Section7Parameters(seed=3))
        b = generate_section7(Section7Parameters(seed=3))
        assert [c.name for c in a.use_case.channels] == \
            [c.name for c in b.use_case.channels]
        assert [c.throughput_bytes_per_s for c in a.use_case.channels] \
            == [c.throughput_bytes_per_s for c in b.use_case.channels]
        assert a.mapping.ip_to_ni == b.mapping.ip_to_ni

    def test_different_seeds_differ(self):
        a = generate_section7(Section7Parameters(seed=3))
        b = generate_section7(Section7Parameters(seed=4))
        assert [c.throughput_bytes_per_s for c in a.use_case.channels] \
            != [c.throughput_bytes_per_s for c in b.use_case.channels]

    def test_requirements_within_paper_ranges(self):
        instance = generate_section7()
        for spec in instance.use_case.channels:
            assert 10e6 <= spec.throughput_bytes_per_s <= 500e6
            assert 35.0 <= spec.max_latency_ns <= 500.0

    def test_four_applications_of_fifty(self):
        instance = generate_section7()
        assert len(instance.use_case.applications) == 4
        for app in instance.use_case.applications:
            assert len(app.channels) == 50

    def test_endpoints_on_distinct_nis(self):
        instance = generate_section7()
        for spec in instance.use_case.channels:
            assert instance.mapping.ni_of(spec.src_ip) != \
                instance.mapping.ni_of(spec.dst_ip)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Section7Parameters(min_throughput_mb_s=0)
        with pytest.raises(ConfigurationError):
            Section7Parameters(min_latency_ns=0)
        with pytest.raises(ConfigurationError):
            Section7Parameters(n_applications=0)

    @pytest.mark.parametrize("seed", [1, 2, 42, 2009])
    def test_generated_instances_allocate_at_500mhz(self, seed):
        """The headline claim must be robust over seeds, not luck."""
        params = Section7Parameters(seed=seed)
        instance = generate_section7(params)
        _, config = configure_section7(instance)
        assert len(config.allocation.channels) == 200
        assert config.summary().all_requirements_met


class TestRunners:
    def test_gs_meets_requirements(self, section7_small):
        _, config = section7_small
        outcome = run_gs(config, n_slots=1200)
        assert outcome.all_requirements_met
        assert outcome.all_within_bounds

    def test_gs_cbr_traffic_also_conforms(self, section7_small):
        _, config = section7_small
        outcome = run_gs(config, n_slots=1200,
                         traffic=cbr_traffic(config))
        assert outcome.all_requirements_met

    def test_be_improves_with_frequency(self, section7_small):
        _, config = section7_small
        rows = be_frequency_sweep(config, [400e6, 1200e6], n_ticks=1200)
        assert rows[1].n_latency_ok >= rows[0].n_latency_ok
        assert rows[1].mean_latency_ns < rows[0].mean_latency_ns

    def test_service_latency_excludes_self_queueing(self, section7_small):
        """Service latencies are never longer than raw latencies."""
        _, config = section7_small
        outcome = run_gs(config, n_slots=1200)
        stats = outcome.result.stats
        for name in list(config.allocation.channels)[:10]:
            service = service_latencies_ns(stats, name)
            raw = [d.latency_ns for d in stats.channel(name).deliveries]
            assert len(service) == len(raw)
            for s, r in zip(service, raw):
                assert s <= r + 1e-9

    def test_burst_traffic_rate_matches_requirement(self, section7_small):
        _, config = section7_small
        patterns = burst_traffic(config)
        horizon = 120_000
        for name, ca in list(config.allocation.channels.items())[:8]:
            offered = patterns[name].offered_bytes(horizon, config.fmt)
            seconds = horizon / config.frequency_hz
            assert offered / seconds == pytest.approx(
                ca.spec.throughput_bytes_per_s, rel=0.06)

    def test_zero_negotiations_raises_allocation_error(self):
        """max_negotiations=0 degrades to a plain AllocationError."""
        from repro.core.exceptions import AllocationError
        params = Section7Parameters(seed=7,
                                    connections_per_application=12,
                                    n_ips=40)
        instance = generate_section7(params)
        with pytest.raises(AllocationError):
            configure_section7(instance, max_negotiations=0)

    def test_exhausted_negotiation_names_last_failure(self):
        """An exhausted negotiation surfaces channel name and reason."""
        from repro.core.exceptions import AllocationError
        params = Section7Parameters(seed=7,
                                    connections_per_application=12,
                                    n_ips=40)
        instance = generate_section7(params)
        with pytest.raises(AllocationError) as excinfo:
            # 120 MHz is far below feasibility for this instance, so
            # negotiation relaxes a few channels and then gives up.
            configure_section7(instance, frequency_hz=120e6,
                               max_negotiations=2)
        error = excinfo.value
        assert "last failure on channel" in str(error)
        assert error.channel is not None
        assert error.reason

    def test_empty_sweep_rejected(self, section7_small):
        from repro.core.exceptions import SimulationError
        _, config = section7_small
        with pytest.raises(SimulationError):
            be_frequency_sweep(config, [])
