"""Compiled vectorised executor vs the per-flit reference.

The compiled executor (:mod:`repro.simulation.compiled`) must be a pure
performance change: for every topology, seed, traffic mix, and
reconfiguration timeline, the per-flit records it materialises are
field-identical to what the scalar slot-by-slot simulator produces.
Because the logical flit schedule is the paper's composability currency,
"equivalent" here means byte-identical, not statistically close.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import WorkloadSpec
from repro.core.configuration import configure
from repro.core.exceptions import ConfigurationError
from repro.core.timeline import replay_configuration
from repro.faults.model import FaultSchedule, FaultSpec
from repro.service.churn import ChurnSpec, ChurnWorkload
from repro.service.controller import SessionService, merge_events
from repro.simulation.backend import FlitLevelBackend, SimRequest
from repro.simulation.compiled import numpy_available
from repro.simulation.composability import replay_traffic
from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.traffic import (BernoulliMessages, ConstantBitRate,
                                      MessageEvent, PeriodicBurst,
                                      Saturating, TrafficPattern)
from repro.topology.builders import concentrated_mesh, mesh, ring, torus
from repro.usecase.runner import service_latencies_ns

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="compiled executor requires numpy")

TOPOLOGIES = {
    "mesh": lambda: mesh(3, 3, nis_per_router=2),
    "cmesh": lambda: concentrated_mesh(3, 2, nis_per_router=4),
    "torus": lambda: torus(3, 3, nis_per_router=2),
    "ring": lambda: ring(6, nis_per_router=3),
}


class _Jittered(TrafficPattern):
    """A pattern the compiler has no closed form for.

    Forces the generic ``events()``-driven compile path (and per-horizon
    recompilation, since unknown patterns are not prefix-stable).
    """

    def __init__(self, message_words: int, mean_gap: int, seed: int):
        self.message_words = message_words
        self.mean_gap = mean_gap
        self.seed = seed

    def events(self, horizon_cycles: int) -> list[MessageEvent]:
        rng = random.Random(self.seed)
        out: list[MessageEvent] = []
        cycle = rng.randrange(self.mean_gap)
        while cycle < horizon_cycles:
            out.append(MessageEvent(cycle, self.message_words, len(out)))
            cycle += 1 + rng.randrange(2 * self.mean_gap)
        return out


def _config(topology, seed, n_channels=12):
    use_case, mapping = WorkloadSpec(
        n_channels=n_channels,
        n_ips=min(len(topology.nis), 18)).build(topology, seed)
    return configure(topology, use_case, table_size=16,
                     frequency_hz=500e6, mapping=mapping,
                     require_met=False)


def _traffic(config, seed):
    """One of each pattern family, round-robin over the channels."""
    fmt = config.fmt
    patterns = {}
    for i, (name, ca) in enumerate(
            sorted(config.allocation.channels.items())):
        kind = i % 5
        if kind == 0:
            patterns[name] = ConstantBitRate.from_rate(
                ca.spec.throughput_bytes_per_s, config.frequency_hz, fmt)
        elif kind == 1:
            patterns[name] = PeriodicBurst(
                burst_messages=3, message_words=5,
                period_cycles=180 + 11 * i, offset_cycles=i)
        elif kind == 2:
            patterns[name] = BernoulliMessages(
                probability=0.04, message_words=4,
                flit_size=fmt.flit_size, seed=seed * 31 + i)
        elif kind == 3:
            patterns[name] = Saturating(message_words=6,
                                        flit_size=fmt.flit_size)
        else:
            patterns[name] = _Jittered(message_words=7, mean_gap=90,
                                       seed=seed * 17 + i)
    return patterns


def _run(config, traffic, n_slots, **kwargs):
    sim = FlitLevelSimulator(config, **kwargs)
    for name, pattern in traffic.items():
        sim.set_traffic(name, pattern)
    return sim.run(n_slots)


def _assert_equivalent(got, ref):
    """Field-identical per-flit records, traces, and totals."""
    assert got.simulated_slots == ref.simulated_slots
    assert got.n_epochs == ref.n_epochs
    assert got.flits_by_channel == ref.flits_by_channel
    assert got.stalled_slots_by_channel == ref.stalled_slots_by_channel
    assert got.stats.channels == ref.stats.channels
    for name in ref.stats.channels:
        actual = got.stats.channel(name)
        expected = ref.stats.channel(name)
        assert actual.injections == expected.injections, name
        assert actual.deliveries == expected.deliveries, name
    assert got.trace.channels() == ref.trace.channels()
    for name in ref.trace.channels():
        assert got.trace.trace(name) == ref.trace.trace(name), name
    assert got.summary() == ref.summary()


@requires_numpy
class TestStaticEquivalence:
    @pytest.mark.parametrize("seed", [1, 7])
    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    def test_per_flit_identity(self, topo_name, seed):
        config = _config(TOPOLOGIES[topo_name](), seed)
        traffic = _traffic(config, seed)
        compiled = _run(config, traffic, 600)
        scalar = _run(config, traffic, 600, compiled=False)
        assert compiled.compiled and not scalar.compiled
        _assert_equivalent(compiled, scalar)

    def test_hoisted_contention_check_accepts_valid_config(self):
        """The reservation-level check replaces the per-slot occupancy
        scan without changing what a contention-free run produces."""
        config = _config(mesh(3, 3, nis_per_router=2), 3)
        traffic = _traffic(config, 3)
        checked = _run(config, traffic, 400, check_contention=True)
        plain = _run(config, traffic, 400)
        assert checked.compiled
        _assert_equivalent(checked, plain)

    def test_backend_meta_names_the_executor(self):
        config = _config(mesh(3, 3, nis_per_router=2), 2)
        request = SimRequest(n_slots=300, traffic=_traffic(config, 2))
        fast = FlitLevelBackend(config).run(request)
        slow = FlitLevelBackend(config, compiled=False).run(request)
        assert fast.meta["executor"] == "compiled"
        assert slow.meta["executor"] == "per-flit"
        for name in slow.composability_trace().channels():
            assert (fast.logical_schedule(name) ==
                    slow.logical_schedule(name)), name


@requires_numpy
class TestTimelineEquivalence:
    def _timeline(self):
        """A churn + fault timeline (PR 5 recipe) with real evictions."""
        topology = mesh(3, 3, nis_per_router=2)
        churn = ChurnWorkload(ChurnSpec(n_sessions=40), topology, 5)
        schedule = FaultSchedule(
            FaultSpec(n_faults=3, fault_rate_per_s=400.0,
                      mean_repair_s=0.004), topology, 9)
        service = SessionService(topology, table_size=32,
                                 frequency_hz=500e6, name="t", seed=1,
                                 record_timeline=True)
        report = service.run(merge_events(churn.events(limit=60),
                                          schedule.events()))
        assert report.faults["n_evicted"] > 0
        return service.timeline(horizon_slots=900)

    def test_fault_timeline_identity_and_full_rebuild(self):
        timeline = self._timeline()
        config = replay_configuration(timeline)
        traffic = replay_traffic(timeline)
        compiled = FlitLevelSimulator(config).run_timeline(
            timeline, traffic=traffic)
        scalar = FlitLevelSimulator(config, compiled=False).run_timeline(
            timeline, traffic=traffic)
        full = FlitLevelSimulator(config, compiled=False).run_timeline(
            timeline, traffic=traffic, incremental=False)
        assert compiled.compiled
        assert compiled.n_epochs > 5
        _assert_equivalent(compiled, scalar)
        # Regression: the full per-epoch rebuild is the second reference
        # and must agree with both faster paths.
        _assert_equivalent(compiled, full)


@requires_numpy
class TestPropertyEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10),
           rate_factor=st.sampled_from([0.5, 1.0, 1.5]))
    def test_any_seeded_workload_matches(self, seed, rate_factor):
        topology = mesh(2, 2, nis_per_router=2)
        config = _config(topology, seed, n_channels=6)
        fmt = config.fmt
        traffic = {}
        for i, (name, ca) in enumerate(
                sorted(config.allocation.channels.items())):
            if i % 2:
                traffic[name] = BernoulliMessages(
                    probability=0.05, message_words=3,
                    flit_size=fmt.flit_size, seed=seed * 13 + i)
            else:
                traffic[name] = ConstantBitRate.from_rate(
                    ca.spec.throughput_bytes_per_s * rate_factor,
                    config.frequency_hz, fmt)
        compiled = _run(config, traffic, 500)
        scalar = _run(config, traffic, 500, compiled=False)
        assert compiled.compiled
        _assert_equivalent(compiled, scalar)


@requires_numpy
class TestServiceLatencies:
    def test_fast_path_matches_record_walk(self):
        config = _config(mesh(3, 3, nis_per_router=2), 5)
        traffic = _traffic(config, 5)
        compiled = _run(config, traffic, 800)
        scalar = _run(config, traffic, 800, compiled=False)
        assert compiled.compiled
        answered = 0
        for name in sorted(scalar.stats.channels):
            fast = compiled.stats.service_latencies_ns(name)
            if fast is not None:
                answered += 1
            assert (service_latencies_ns(compiled.stats, name) ==
                    service_latencies_ns(scalar.stats, name)), name
        # The vectorised answer must actually engage, not just defer.
        assert answered > 0


class TestConfigurationGuards:
    @requires_numpy
    def test_compiled_rejects_flow_control(self):
        config = _config(mesh(2, 2, nis_per_router=2), 1, n_channels=4)
        with pytest.raises(ConfigurationError):
            FlitLevelSimulator(config, compiled=True, flow_control=True)

    @requires_numpy
    def test_flow_control_falls_back_to_per_flit(self):
        config = _config(mesh(2, 2, nis_per_router=2), 1, n_channels=4)
        sim = FlitLevelSimulator(config, flow_control=True)
        for name, pattern in _traffic(config, 1).items():
            sim.set_traffic(name, pattern)
        assert not sim.run(300).compiled
