"""Documentation quality gates.

Two contracts keep the docs from rotting:

* every example in ``docs/*.md`` and in module docstrings is a real
  doctest, executed here (and by the CI docs step via
  ``pytest --doctest-glob='docs/*.md' --doctest-modules``);
* every public symbol exported from ``repro/__init__.py`` and from
  each subpackage ``__init__.py`` carries a docstring.
"""

import doctest
import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"
DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))

#: Subpackages whose exports are part of the public API surface.
SUBPACKAGES = (
    "core", "topology", "simulation", "campaign", "service", "design",
    "faults", "telemetry", "router", "link", "ni", "wrapper", "clocking",
    "baseline", "synthesis", "usecase", "experiments",
)


def _public_exports(module):
    """The names a package declares public (``__all__`` or lazy map)."""
    exports = getattr(module, "__all__", None)
    if exports is None:
        exports = sorted(getattr(module, "_EXPORTS", {}))
    return [n for n in exports if not n.startswith("_")]


def _module_names():
    return sorted(
        info.name
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."))


class TestDocPages:
    def test_docs_directory_is_populated(self):
        names = {p.name for p in DOC_PAGES}
        assert {"architecture.md", "cli.md", "guarantees.md",
                "campaigns.md", "observability.md",
                "fairness.md"} <= names

    def test_docs_linked_from_readme(self):
        readme = (DOCS_DIR.parent / "README.md").read_text(
            encoding="utf-8")
        for page in ("docs/architecture.md", "docs/cli.md",
                     "docs/guarantees.md", "docs/campaigns.md",
                     "docs/observability.md", "docs/fairness.md"):
            assert page in readme, f"README does not link {page}"

    def test_observability_linked_from_architecture(self):
        arch = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
        assert "observability.md" in arch

    def test_fairness_linked_from_architecture(self):
        arch = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
        assert "fairness.md" in arch

    @pytest.mark.parametrize("path", DOC_PAGES, ids=lambda p: p.name)
    def test_doc_examples_run(self, path):
        result = doctest.testfile(str(path), module_relative=False,
                                  optionflags=doctest.ELLIPSIS)
        assert result.attempted > 0 or path.name not in (
            "architecture.md", "cli.md", "guarantees.md", "campaigns.md",
            "observability.md")
        assert result.failed == 0


class TestModuleDoctests:
    @pytest.mark.parametrize("name", _module_names())
    def test_module_doctests(self, name):
        module = importlib.import_module(name)
        result = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
        assert result.failed == 0


class TestDocstringPresence:
    def _missing_docstring(self, qualname, obj):
        if not (callable(obj) or isinstance(obj, type)):
            return None  # constants document themselves by value
        doc = (getattr(obj, "__doc__", None) or "").strip()
        return qualname if not doc else None

    def test_top_level_exports_have_docstrings(self):
        missing = []
        for name in repro.__all__:
            if name == "__version__":
                continue
            entry = self._missing_docstring(f"repro.{name}",
                                            getattr(repro, name))
            if entry:
                missing.append(entry)
        assert not missing, \
            f"exported symbols without docstrings: {missing}"

    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_subpackage_exports_have_docstrings(self, package):
        module = importlib.import_module(f"repro.{package}")
        assert (module.__doc__ or "").strip(), \
            f"repro.{package} has no package docstring"
        missing = []
        for name in _public_exports(module):
            entry = self._missing_docstring(
                f"repro.{package}.{name}", getattr(module, name))
            if entry:
                missing.append(entry)
        assert not missing, \
            f"exported symbols without docstrings: {missing}"
