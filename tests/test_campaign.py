"""Tests for the scenario-campaign subsystem.

The load-bearing claim is determinism: a campaign spec plus a seed grid
fully determines the aggregated report, byte for byte, no matter how the
runs are scheduled across processes.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (CampaignRunner, CampaignSpec, ScenarioSpec,
                            TopologySpec, TrafficSpec, WorkloadSpec,
                            demo_campaign, derive_seed, micro_campaign,
                            scenario_grid)
from repro.campaign.runner import execute_run
from repro.core.exceptions import ConfigurationError


def _tiny_campaign(seeds=(1, 2)) -> CampaignSpec:
    scenarios = scenario_grid(
        topologies={"mesh2x2": TopologySpec(kind="mesh", cols=2, rows=2)},
        traffic_mixes={"cbr": TrafficSpec(pattern="cbr"),
                       "bernoulli": TrafficSpec(pattern="bernoulli")},
        backends={"flit": ("flit", "synchronous"),
                  "be": ("be", "synchronous")},
        workload=WorkloadSpec(n_channels=4, n_ips=8),
        n_slots=300)
    return CampaignSpec(name="tiny", scenarios=scenarios, seeds=seeds)


class TestSpecs:
    def test_grid_crosses_all_axes(self):
        spec = _tiny_campaign()
        assert len(spec.scenarios) == 1 * 2 * 2
        runs = spec.expand()
        assert len(runs) == 4 * 2
        assert len({r.run_id for r in runs}) == len(runs)

    def test_expansion_order_is_stable(self):
        a = [r.run_id for r in _tiny_campaign().expand()]
        b = [r.run_id for r in _tiny_campaign().expand()]
        assert a == b

    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")
        assert derive_seed(7, "a", "b") != derive_seed(7, "a", "c")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_workload_deterministic_per_seed(self):
        workload = WorkloadSpec(n_channels=5, n_ips=8)
        topo = TopologySpec(kind="mesh", cols=2, rows=2).build()
        first, _ = workload.build(topo, seed=99)
        second, _ = workload.build(topo, seed=99)
        assert [c.name for c in first.channels] == \
            [c.name for c in second.channels]
        assert [c.throughput_bytes_per_s for c in first.channels] == \
            [c.throughput_bytes_per_s for c in second.channels]
        third, _ = workload.build(topo, seed=100)
        assert [c.throughput_bytes_per_s for c in first.channels] != \
            [c.throughput_bytes_per_s for c in third.channels]

    def test_single_ni_topology_rejected_not_hung(self):
        """All IPs on one NI must error out, not spin forever."""
        workload = WorkloadSpec(n_channels=2, n_ips=4)
        topo = TopologySpec(kind="single", nis_per_router=1).build()
        with pytest.raises(ConfigurationError):
            workload.build(topo, seed=1)

    def test_traffic_matches_section7_builders(self):
        """The rate-driven mixes delegate to the canonical builders."""
        from repro.usecase.runner import burst_traffic, cbr_traffic
        run = _tiny_campaign(seeds=(1,)).expand()[0]
        scenario = run.scenario
        topo = scenario.topology.build()
        use_case, mapping = scenario.workload.build(topo, 42)
        from repro.core.configuration import configure
        config = configure(topo, use_case,
                           table_size=scenario.table_size,
                           frequency_hz=500e6, mapping=mapping,
                           require_met=False)
        built = TrafficSpec(pattern="cbr").build(config, 0)
        reference = cbr_traffic(config)
        assert {n: p.interval_cycles for n, p in built.items()} == \
            {n: p.interval_cycles for n, p in reference.items()}
        built = TrafficSpec(pattern="burst").build(config, 0)
        reference = burst_traffic(config)
        assert {n: p.period_cycles for n, p in built.items()} == \
            {n: p.period_cycles for n, p in reference.items()}

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(kind="klein_bottle")
        with pytest.raises(ConfigurationError):
            TrafficSpec(pattern="telepathy")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", n_slots=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", backend="flitt")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", backend="cycle", clocking="psychic")
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="c", scenarios=())
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="c",
                scenarios=(ScenarioSpec(name="dup"),
                           ScenarioSpec(name="dup")))
        with pytest.raises(ConfigurationError):
            CampaignRunner(_tiny_campaign(), workers=0)


class TestExecution:
    def test_single_run_record_shape(self):
        run = _tiny_campaign(seeds=(3,)).expand()[0]
        record = execute_run(run)
        assert record["status"] == "ok"
        assert record["run_id"] == run.run_id
        result = record["result"]
        assert result["messages_delivered"] > 0
        assert result["latency_ns"]["max"] >= result["latency_ns"]["p99"]
        json.dumps(record)  # JSON-serialisable throughout

    def test_serial_and_parallel_reports_byte_identical(self):
        spec = _tiny_campaign()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        assert serial.n_runs == parallel.n_runs == 8
        assert serial.n_failed == parallel.n_failed == 0
        assert serial.to_json() == parallel.to_json()

    def test_repeated_runs_byte_identical(self):
        spec = _tiny_campaign(seeds=(5,))
        first = CampaignRunner(spec, workers=1).run()
        second = CampaignRunner(spec, workers=1).run()
        assert first.to_json() == second.to_json()

    def test_different_seeds_change_results(self):
        runs = _tiny_campaign(seeds=(1, 2)).expand()
        flit_runs = [r for r in runs if r.scenario.backend == "flit"
                     and "cbr" in r.scenario.name]
        records = [execute_run(r) for r in flit_runs[:2]]
        assert records[0]["result"] != records[1]["result"]

    def test_summary_rows_render(self):
        from repro.experiments.report import format_table
        result = CampaignRunner(_tiny_campaign(seeds=(1,)),
                                workers=1).run()
        rows = result.summary_rows()
        assert len(rows) == 4
        table = format_table(rows, title="campaign")
        assert "p99_ns" in table

    def test_infeasible_scenario_is_a_record_not_a_crash(self):
        # A saturating workload far beyond capacity on a tiny table.
        spec = CampaignSpec(
            name="infeasible",
            scenarios=(ScenarioSpec(
                name="hot", topology=TopologySpec(kind="mesh", cols=2,
                                                  rows=2),
                workload=WorkloadSpec(n_channels=24, n_ips=8,
                                      min_throughput_mb_s=300.0,
                                      max_throughput_mb_s=500.0),
                traffic=TrafficSpec(pattern="cbr"),
                n_slots=100, table_size=4),),
            seeds=(1,))
        result = CampaignRunner(spec, workers=1).run()
        assert result.n_runs == 1
        record = result.records[0]
        assert record["status"] == "allocation_failed"
        assert "error" in record


class TestPresets:
    def test_demo_campaign_shape(self):
        spec = demo_campaign()
        # 8 simulate + 1 serve + 1 replay + 1 faults
        assert len(spec.scenarios) == 11
        assert len(spec.expand()) == 22
        modes = {s.mode for s in spec.scenarios}
        assert modes == {"simulate", "serve", "replay", "faults"}

    def test_micro_campaign_runs_clean(self):
        result = CampaignRunner(micro_campaign(n_slots=200),
                                workers=1).run()
        assert result.n_runs == 4
        assert result.n_failed == 0


class TestReplayMode:
    def _replay_scenario(self, backend="flit"):
        from repro.service.churn import ChurnSpec
        return ScenarioSpec(
            name=f"replay-{backend}", mode="replay", backend=backend,
            topology=TopologySpec(kind="mesh", cols=3, rows=3,
                                  nis_per_router=2),
            churn=ChurnSpec(n_sessions=50), n_slots=800, table_size=16)

    def test_replay_rejects_cycle_backend(self):
        with pytest.raises(ConfigurationError):
            self._replay_scenario(backend="cycle")

    def test_churn_spec_rejected_for_simulate(self):
        from repro.service.churn import ChurnSpec
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="s", mode="simulate",
                         churn=ChurnSpec(n_sessions=10))

    def test_flit_replay_record_is_composable(self):
        spec = CampaignSpec(name="replay",
                            scenarios=(self._replay_scenario(),),
                            seeds=(1,))
        record = execute_run(spec.expand()[0])
        assert record["status"] == "ok"
        result = record["result"]
        assert result["composable"] is True
        assert result["diverged"] == []
        assert result["n_epochs"] >= 3
        assert result["n_survivors"] >= 1
        json.dumps(record)

    def test_replay_runs_deterministic(self):
        spec = CampaignSpec(name="replay",
                            scenarios=(self._replay_scenario("be"),),
                            seeds=(2,))
        first = CampaignRunner(spec, workers=1).run()
        second = CampaignRunner(spec, workers=1).run()
        assert first.to_json() == second.to_json()
        assert first.records[0]["status"] == "ok"

    def test_replay_summary_rows_render(self):
        from repro.experiments.report import format_table
        spec = CampaignSpec(name="replay",
                            scenarios=(self._replay_scenario(),),
                            seeds=(1,))
        result = CampaignRunner(spec, workers=1).run()
        rows = result.summary_rows()
        assert rows[0]["status"].endswith("composable")
        format_table(rows, title="replay")
