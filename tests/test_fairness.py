"""Integration tests for multi-tenant weighted-fair admission.

The adversarial regression (abusive tenant vs wfq vs FCFS), the
fairness + faults composition, deterministic event merging with policy
events, the campaign/CLI surface and the per-tenant conformance rows.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.runner import CampaignRunner, execute_run
from repro.campaign.presets import fairness_campaign, preset_by_name
from repro.campaign.spec import RunSpec, ScenarioSpec, TopologySpec
from repro.core.exceptions import ConfigurationError
from repro.faults.model import FaultEvent, FaultSchedule, FaultSpec
from repro.service import (ChurnSpec, ChurnWorkload, FairnessSpec,
                           PolicyEvent, SessionService, TenantSpec,
                           abusive_tenant_mix, merge_events, shed_rank,
                           tenant_events)
from repro.service.fairness_demo import (RETENTION_FLOOR,
                                         canonical_fairness_json,
                                         run_fairness_demo)
from repro.topology.builders import concentrated_mesh, mesh

TENANTED = ChurnSpec(n_sessions=120, arrival_rate_per_s=15000.0,
                     tenants=abusive_tenant_mix(
                         2, floor_opens_per_window=2))


@pytest.fixture(scope="module")
def small_mesh():
    return mesh(3, 3, nis_per_router=2)


def _service(topology, **kwargs):
    return SessionService(topology, table_size=32, frequency_hz=500e6,
                          name="fair-test", seed=1, **kwargs)


class TestMergeEvents:
    def test_equal_instant_total_order(self, small_mesh):
        """Ties break close < repair < policy < fail < open."""
        churn = ChurnWorkload(ChurnSpec(n_sessions=6), small_mesh, 3)
        events = churn.events()
        t = events[0].time_s
        fail = FaultEvent(t, "fail", "link", ("r0_0", "r1_0"))
        repair = FaultEvent(t, "repair", "link", ("r0_0", "r1_0"))
        policy = PolicyEvent(t, "set_weight", "acme", 2.0)
        opens = tuple(e for e in events if e.kind == "open")
        shifted_close = opens[0].__class__(t, "close", opens[0].session)
        merged = merge_events(
            (opens[0], shifted_close), (fail,), (repair,), (policy,))
        at_t = [e for e in merged if e.time_s == t]
        kinds = [getattr(e, "action", None) or e.kind for e in at_t]
        assert kinds == ["close", "repair", "set_weight", "fail",
                         "open"]

    def test_merge_is_input_order_invariant(self, small_mesh):
        """Any permutation of the input streams merges identically."""
        churn = ChurnWorkload(ChurnSpec(n_sessions=20), small_mesh, 5)
        events = churn.events()
        schedule = FaultSchedule(
            FaultSpec(n_faults=3, fault_rate_per_s=400.0,
                      mean_repair_s=0.004), small_mesh, 9)
        faults = schedule.events()
        policies = (PolicyEvent(events[2].time_s, "set_floor", "a", 1),
                    PolicyEvent(events[2].time_s, "set_weight", "a",
                                3.0))
        forward = merge_events(events, faults, policies)
        backward = merge_events(policies, faults, events)
        assert forward == backward
        assert [e.time_s for e in forward] == sorted(
            e.time_s for e in forward)

    def test_single_stream_still_sorted(self, small_mesh):
        churn = ChurnWorkload(ChurnSpec(n_sessions=10), small_mesh, 2)
        events = churn.events()
        assert merge_events(tuple(reversed(events))) == tuple(events)


class TestPolicyKnob:
    def test_fcfs_rejects_fairness_configuration(self, small_mesh):
        with pytest.raises(ConfigurationError):
            _service(small_mesh, fairness=FairnessSpec())
        with pytest.raises(ConfigurationError):
            _service(small_mesh, tenants=(TenantSpec("a"),))
        with pytest.raises(ConfigurationError):
            _service(small_mesh, policy="lifo")

    def test_fcfs_service_refuses_policy_events(self, small_mesh):
        service = _service(small_mesh)
        with pytest.raises(ConfigurationError):
            service.process(PolicyEvent(0.0, "set_weight", "a", 2.0))

    def test_policy_event_reweights_live_scheduler(self, small_mesh):
        workload = ChurnWorkload(TENANTED, small_mesh, 11)
        events = workload.events(limit=60)
        reweight = PolicyEvent(events[10].time_s, "set_weight",
                               "good0", 5.0)
        service = _service(small_mesh, policy="wfq",
                           tenants=TENANTED.tenants)
        report = service.run(merge_events(events, (reweight,)))
        assert report.fairness is not None
        per_tenant = report.fairness["per_tenant"]
        assert per_tenant["good0"]["weight"] == 5.0
        assert per_tenant["abuser"]["weight"] == 1.0

    def test_wfq_report_carries_tenant_sections(self, small_mesh):
        workload = ChurnWorkload(TENANTED, small_mesh, 11)
        report = _service(small_mesh, policy="wfq",
                          tenants=TENANTED.tenants).run(
            workload.events(limit=80))
        record = json.loads(report.to_json())
        assert set(record["tenants"]) == {t.name
                                          for t in TENANTED.tenants}
        assert record["fairness"]["policy"] == "wfq"
        assert record["totals"]["n_shed"] == sum(
            t["shed"] for t in record["fairness"]["per_tenant"].values())


class TestAdversarialRegression:
    """The ISSUE's acceptance criterion, as a regression test."""

    @pytest.fixture(scope="class")
    def demo(self):
        return run_fairness_demo(n_events=800)

    def test_well_behaved_tenants_keep_solo_rate_under_wfq(self, demo):
        record, _, _ = demo
        checks = record["checks"]
        assert checks["wfq_retention_ok"], checks
        assert checks["min_well_behaved_retention"] >= RETENTION_FLOOR

    def test_fcfs_baseline_demonstrably_fails(self, demo):
        record, _, _ = demo
        assert record["checks"]["fcfs_fails"]
        worst = min(
            row["fcfs_retention"]
            for row in record["retention"].values()
            if row["well_behaved"])
        assert worst < RETENTION_FLOOR

    def test_abuser_is_contained_not_starved(self, demo):
        record, _, _ = demo
        abuser = record["retention"]["abuser"]
        assert not abuser["well_behaved"]
        assert abuser["wfq_retention"] < abuser["fcfs_retention"]
        assert record["wfq"]["fairness"]["per_tenant"]["abuser"][
            "admitted"] > 0

    def test_reports_byte_identical_and_canonical(self, demo):
        record, report_json, identical = demo
        assert identical
        parsed = json.loads(report_json)
        assert "_conformance" not in parsed and "_reports" not in parsed
        assert report_json == canonical_fairness_json(record)

    def test_solo_filter_partitions_stream(self, small_mesh):
        events = ChurnWorkload(TENANTED, small_mesh, 3).events(limit=60)
        per_tenant = [tenant_events(events, t.name)
                      for t in TENANTED.tenants]
        assert sum(len(p) for p in per_tenant) == len(events)
        assert sorted(e.session.session_id for p in per_tenant
                      for e in p) == sorted(
            e.session.session_id for e in events)


class TestFaultComposition:
    """Fairness composes with the fault tier and stays replayable."""

    def test_wfq_with_faults_keeps_survivors_composable(self):
        from repro.simulation.composability import (replay_traffic,
                                                    verify_timeline)
        topology = mesh(3, 3, nis_per_router=2)
        churn = ChurnWorkload(TENANTED, topology, 5)
        schedule = FaultSchedule(
            FaultSpec(n_faults=3, fault_rate_per_s=400.0,
                      mean_repair_s=0.004), topology, 9)
        service = _service(
            topology, policy="wfq", tenants=TENANTED.tenants,
            fairness=FairnessSpec(tenant_opens_per_window=30),
            record_timeline=True)
        report = service.run(merge_events(churn.events(limit=80),
                                          schedule.events()))
        assert report.faults["n_evicted"] > 0
        assert report.fairness is not None
        timeline = service.timeline(horizon_slots=900)
        verdict = verify_timeline(timeline, replay_traffic(timeline),
                                  scenario="fairness-faults")
        assert verdict.is_composable

    def test_floors_hold_under_faults(self):
        """Policy sheds only tenants at/above their window floor."""
        from repro.service.fairness import WeightedFairScheduler
        topology = mesh(3, 3, nis_per_router=2)
        churn = ChurnWorkload(TENANTED, topology, 5)
        schedule = FaultSchedule(
            FaultSpec(n_faults=3, fault_rate_per_s=400.0,
                      mean_repair_s=0.004), topology, 9)
        scheduler = WeightedFairScheduler(
            TENANTED.tenants,
            spec=FairnessSpec(pressure_threshold=0.0,
                              tenant_opens_per_window=2),
            record_decisions=True)
        service = _service(topology, policy="wfq",
                           tenants=TENANTED.tenants)
        service._fairness = scheduler
        service.run(merge_events(churn.events(limit=80),
                                 schedule.events()))
        floor_of = {t.name: t.floor_opens_per_window
                    for t in TENANTED.tenants}
        sheds = [d for d in scheduler.decisions if d[4] != "pass"]
        assert sheds, "hostile spec should shed something"
        for (_, tenant, _, _, _, admitted_in_window) in sheds:
            assert admitted_in_window >= floor_of[tenant]


class TestFairnessScenarios:
    def test_policy_axis_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", policy="wfq")  # simulate mode
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", mode="serve", policy="wfq",
                         churn=ChurnSpec())  # untenanted
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", mode="fairness",
                         churn=ChurnSpec())  # untenanted
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", mode="serve", policy="lifo")
        spec = ScenarioSpec(name="x", mode="fairness", churn=TENANTED)
        assert spec.policy == "fcfs"

    def test_execute_fairness_run_record(self):
        scenario = ScenarioSpec(
            name="fair", mode="fairness",
            topology=TopologySpec(kind="cmesh", cols=4, rows=3,
                                  nis_per_router=4),
            churn=TENANTED, table_size=32)
        run = RunSpec(run_id="fair/seed1", scenario=scenario, seed=1,
                      base_seed=2009)
        record = execute_run(run)
        assert record["status"] == "ok"
        assert record["mode"] == "fairness"
        result = record["result"]
        assert set(result["retention"]) == {t.name
                                            for t in TENANTED.tenants}
        assert "wfq" in result and "fcfs" in result
        assert not any(k.startswith("_") for k in result)
        assert record == execute_run(run)

    def test_wfq_serve_scenario_runs(self):
        scenario = ScenarioSpec(
            name="wfq-serve", mode="serve", policy="wfq",
            topology=TopologySpec(kind="mesh", cols=3, rows=3,
                                  nis_per_router=2),
            churn=TENANTED, table_size=32)
        record = execute_run(RunSpec(
            run_id="wfq-serve/seed1", scenario=scenario, seed=1,
            base_seed=2009))
        assert record["status"] == "ok"
        assert record["policy"] == "wfq"
        assert record["result"]["fairness"]["policy"] == "wfq"

    def test_fairness_preset_shape_and_summary(self):
        spec = fairness_campaign(n_events=200, seeds=(1,))
        assert preset_by_name("fairness").name == "fairness"
        assert len(spec.expand()) == 4
        result = CampaignRunner(spec, keep_records=True).run()
        assert result.n_failed == 0
        rows = result.summary_rows()
        assert all("retention" in row for row in rows)
        assert all(row["status"].startswith("ok/") for row in rows)


class TestFairnessCli:
    def test_wfq_demo_exit_code(self, capsys):
        from repro.__main__ import main
        assert main(["serve", "--policy", "wfq", "--demo",
                     "--events", "600"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical: yes" in out
        assert "retention" in out
        assert "ABUSIVE" in out

    def test_fcfs_demo_output_unchanged(self, capsys):
        from repro.__main__ import main
        assert main(["serve", "--demo", "--events", "120"]) == 0
        out = capsys.readouterr().out
        assert "ABUSIVE" not in out and "fairness" not in out


class TestTenantConformance:
    def test_monitored_demo_reports_per_tenant_retention(self):
        from repro.telemetry.monitor import MonitorSpec
        record, _, identical = run_fairness_demo(
            n_events=400, monitor=MonitorSpec())
        assert identical
        conformance = record["_conformance"]
        retention = conformance.tenant_retention
        assert retention, "monitored wfq run must attribute tenants"
        for name, row in retention.items():
            assert row["n_monitored"] > 0
            assert 0.0 <= row["retention"] <= 1.0
        assert conformance.tenant_rows()

    def test_shed_rank_orders_default_classes(self):
        from repro.service.qos import DEFAULT_CLASSES
        ranks = {c.name: shed_rank(c) for c in DEFAULT_CLASSES}
        assert ranks["bulk"] == 0
        assert ranks["voice"] == max(ranks.values())
