"""Unit and property tests for the contention-free slot allocator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (Allocation, AllocatorOptions,
                                   SlotAllocator)
from repro.core.analysis import analyse
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.slot_table import shifted
from repro.core.words import WordFormat
from repro.topology.builders import mesh, single_router
from repro.topology.mapping import Mapping, round_robin


def _allocator(topo, table_size=16, frequency_hz=500e6, **kw):
    return SlotAllocator(topo, table_size=table_size,
                         frequency_hz=frequency_hz, **kw)


class TestBasicAllocation:
    def test_single_channel(self):
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        alloc = _allocator(topo).allocate(
            [ChannelSpec("c", "a", "b", 100 * MB)], mapping)
        assert "c" in alloc.channels
        alloc.validate()

    def test_slots_shift_along_path(self):
        topo = mesh(2, 1, nis_per_router=1)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni1_0_0"})
        alloc = _allocator(topo).allocate(
            [ChannelSpec("c", "a", "b", 100 * MB)], mapping)
        ca = alloc.channel("c")
        for link, shift in zip(ca.path.links, ca.path.link_shifts):
            table = alloc.link_tables[link.key]
            for slot in ca.slots:
                assert table.owner(shifted(slot, shift, 16)) == "c"

    def test_zero_throughput_still_gets_one_slot(self):
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        alloc = _allocator(topo).allocate(
            [ChannelSpec("c", "a", "b", 0.0)], mapping)
        assert alloc.channel("c").n_slots == 1

    def test_throughput_slot_count(self):
        # 500 MHz, 32-bit, table 16: one slot guarantees
        # 8 B / (16*3 cycles) * 500 MHz = 83.3 MB/s.
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        alloc = _allocator(topo).allocate(
            [ChannelSpec("c", "a", "b", 200 * MB)], mapping)
        assert alloc.channel("c").n_slots == 3

    def test_latency_requirement_adds_slots(self):
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        alloc = _allocator(topo).allocate(
            [ChannelSpec("c", "a", "b", 10 * MB, max_latency_ns=40.0)],
            mapping)
        bounds = analyse(alloc)["c"]
        assert bounds.latency_ns <= 40.0

    def test_infeasible_latency_raises(self):
        topo = mesh(4, 1, nis_per_router=1)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni3_0_0"})
        # Path traversal alone exceeds 10 ns at 500 MHz.
        with pytest.raises(AllocationError):
            _allocator(topo).allocate(
                [ChannelSpec("c", "a", "b", 10 * MB, max_latency_ns=10.0)],
                mapping)

    def test_capacity_exhaustion_raises(self):
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        # Each channel needs > half the table; two cannot fit.
        channels = [ChannelSpec(f"c{i}", "a", "b", 700 * MB)
                    for i in range(2)]
        with pytest.raises(AllocationError):
            _allocator(topo).allocate(channels, mapping)

    def test_error_carries_channel_name(self):
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        channels = [ChannelSpec(f"c{i}", "a", "b", 700 * MB)
                    for i in range(2)]
        with pytest.raises(AllocationError) as exc:
            _allocator(topo).allocate(channels, mapping)
        assert exc.value.channel is not None

    def test_duplicate_channel_names_rejected(self):
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        channels = [ChannelSpec("c", "a", "b", 1 * MB)] * 2
        with pytest.raises(ConfigurationError):
            _allocator(topo).allocate(channels, mapping)

    def test_same_ni_endpoints_rejected(self):
        topo = single_router(1)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_0"})
        with pytest.raises(ConfigurationError):
            _allocator(topo).allocate(
                [ChannelSpec("c", "a", "b", 1 * MB)], mapping)


class TestDeterminismAndOrdering:
    def _workload(self, topo, n=12, seed=3):
        rng = random.Random(seed)
        ips = [f"ip{i}" for i in range(10)]
        mapping = round_robin(ips, topo)
        channels = []
        for i in range(n):
            src, dst = rng.sample(ips, 2)
            while mapping.ni_of(src) == mapping.ni_of(dst):
                src, dst = rng.sample(ips, 2)
            channels.append(ChannelSpec(
                f"c{i}", src, dst, rng.uniform(10, 120) * MB,
                application=f"app{i % 3}"))
        return channels, mapping

    def test_identical_runs_identical_results(self):
        topo = mesh(3, 2, nis_per_router=1)
        channels, mapping = self._workload(topo)
        a1 = _allocator(topo, table_size=24).allocate(channels, mapping)
        a2 = _allocator(topo, table_size=24).allocate(channels, mapping)
        assert {n: c.slots for n, c in a1.channels.items()} == \
            {n: c.slots for n, c in a2.channels.items()}

    def test_order_options_all_validate(self):
        topo = mesh(3, 2, nis_per_router=1)
        channels, mapping = self._workload(topo)
        for order in ("tightness", "throughput", "input"):
            alloc = _allocator(
                topo, table_size=24,
                options=AllocatorOptions(order=order)).allocate(
                    channels, mapping)
            alloc.validate()

    def test_unknown_order_rejected(self):
        with pytest.raises(ConfigurationError):
            AllocatorOptions(order="random")


class TestIncrementalReconfiguration:
    def test_extend_preserves_existing_reservations(self):
        topo = mesh(2, 2, nis_per_router=1)
        mapping = round_robin([f"ip{i}" for i in range(4)], topo)
        allocator = _allocator(topo)
        first = [ChannelSpec("a", "ip0", "ip1", 50 * MB,
                             application="app1")]
        alloc = allocator.allocate(first, mapping)
        before = alloc.channel("a").slots
        allocator.extend(alloc, [ChannelSpec("b", "ip2", "ip3", 50 * MB,
                                             application="app2")], mapping)
        assert alloc.channel("a").slots == before
        alloc.validate()

    def test_release_application_frees_slots(self):
        topo = mesh(2, 2, nis_per_router=1)
        mapping = round_robin([f"ip{i}" for i in range(4)], topo)
        allocator = _allocator(topo)
        channels = [
            ChannelSpec("a", "ip0", "ip1", 50 * MB, application="app1"),
            ChannelSpec("b", "ip2", "ip3", 50 * MB, application="app2"),
        ]
        alloc = allocator.allocate(channels, mapping)
        released = alloc.release_application("app1")
        assert released == ("a",)
        assert "a" not in alloc.channels
        alloc.validate()
        # The freed slots are reusable.
        allocator.extend(alloc, [ChannelSpec(
            "a2", "ip0", "ip1", 50 * MB, application="app3")], mapping)
        alloc.validate()

    def test_commit_rolls_back_cleanly_on_conflict(self):
        topo = single_router(2)
        mapping = Mapping({"a": "ni0_0_0", "b": "ni0_0_1"})
        allocator = _allocator(topo, table_size=4)
        alloc = allocator.allocate(
            [ChannelSpec("c1", "a", "b", 1 * MB)], mapping)
        from repro.core.allocation import ChannelAllocation
        taken = alloc.channel("c1")
        clash = ChannelAllocation(
            spec=ChannelSpec("c2", "a", "b", 1 * MB),
            path=taken.path, slots=taken.slots)
        with pytest.raises(AllocationError):
            alloc.commit(clash)
        assert "c2" not in alloc.channels
        alloc.validate()


class TestAllocationProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 10))
    def test_random_workloads_contention_free(self, seed, n_channels):
        """Any random feasible workload yields a valid, bounded allocation."""
        rng = random.Random(seed)
        topo = mesh(2, 2, nis_per_router=1)
        ips = [f"ip{i}" for i in range(8)]
        mapping = round_robin(ips, topo)
        channels = []
        for i in range(n_channels):
            src, dst = rng.sample(ips, 2)
            while mapping.ni_of(src) == mapping.ni_of(dst):
                src, dst = rng.sample(ips, 2)
            channels.append(ChannelSpec(
                f"c{i}", src, dst, rng.uniform(5, 80) * MB))
        try:
            alloc = _allocator(topo, table_size=16).allocate(
                channels, mapping)
        except AllocationError:
            return  # infeasible draws are acceptable — never wrong answers
        alloc.validate()
        bounds = analyse(alloc)
        for b in bounds.values():
            assert b.meets_throughput

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_release_then_reallocate_is_clean(self, seed):
        """Releasing any subset leaves a consistent, extendable state."""
        rng = random.Random(seed)
        topo = mesh(2, 2, nis_per_router=1)
        ips = [f"ip{i}" for i in range(8)]
        mapping = round_robin(ips, topo)
        channels = []
        for i in range(6):
            src, dst = rng.sample(ips, 2)
            while mapping.ni_of(src) == mapping.ni_of(dst):
                src, dst = rng.sample(ips, 2)
            channels.append(ChannelSpec(f"c{i}", src, dst, 30 * MB))
        allocator = _allocator(topo, table_size=16)
        try:
            alloc = allocator.allocate(channels, mapping)
        except AllocationError:
            return
        victims = rng.sample(sorted(alloc.channels), k=3)
        for name in victims:
            alloc.release(name)
        alloc.validate()
        total = sum(t.utilisation() for t in alloc.link_tables.values())
        # Only surviving channels hold slots.
        expected = set(alloc.channels)
        for table in alloc.link_tables.values():
            assert table.owners() <= expected
        assert total >= 0
