"""Tests for :mod:`repro.telemetry` — the observability layer.

The load-bearing contract is *determinism*: canonical reports must be
byte-identical with telemetry on and off, the non-wall portion of the
telemetry stream itself must be byte-identical across repeated runs,
and every wall-clock quantity must be quarantined into the trailing
``meta`` line.  The rest covers the instrument semantics (histogram
bucket edges, Null no-ops), the exporters (JSONL, Prometheus, Chrome
trace) and the satellite regressions (empty latency stats, executor
names in ``SimResult``).
"""

import json

import pytest

from repro.telemetry import (NULL_TELEMETRY, NullTelemetry, Telemetry,
                             chrome_trace, coalesce, prometheus_text)
from repro.telemetry.metrics import (NULL_COUNTER, NULL_GAUGE,
                                     NULL_HISTOGRAM, Histogram,
                                     MetricRegistry)
from repro.telemetry.spans import SPAN_UNITS, Span


def _strip_meta(jsonl: str) -> list[str]:
    """Drop the wall-clock meta line — everything else is deterministic."""
    return [line for line in jsonl.splitlines()
            if json.loads(line).get("kind") != "meta"]


class TestMetrics:
    def test_counter_accumulates(self):
        tel = Telemetry()
        c = tel.counter("events", outcome="ok")
        c.inc()
        c.inc(4)
        assert tel.value("events", outcome="ok") == 5

    def test_counter_identity_by_name_and_labels(self):
        tel = Telemetry()
        assert tel.counter("x", a="1") is tel.counter("x", a="1")
        assert tel.counter("x", a="1") is not tel.counter("x", a="2")

    def test_gauge_set_inc_dec(self):
        tel = Telemetry()
        g = tel.gauge("depth")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert tel.value("depth") == 8

    def test_histogram_bucket_edges_inclusive_upper(self):
        h = Histogram("lat", bounds=(1, 2, 5))
        for v in (0.5, 1, 1.5, 2, 5, 7):
            h.observe(v)
        record = h.to_record()
        # bounds are inclusive uppers; the last bucket is overflow.
        assert record["le"] == [1, 2, 5]
        assert record["counts"] == [2, 2, 1, 1]
        assert record["count"] == 6
        assert record["sum"] == pytest.approx(17.0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2, 1))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())

    def test_histogram_rebind_with_other_bounds_rejected(self):
        registry = MetricRegistry()
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1, 2, 3))

    def test_registry_orders_metrics_deterministically(self):
        tel = Telemetry()
        tel.counter("z").inc()
        tel.counter("a", k="2").inc()
        tel.counter("a", k="1").inc()
        names = [(m.name, m.labels) for m in tel.registry.metrics()]
        assert names == sorted(names)


class TestNullTelemetry:
    def test_null_instruments_are_shared_no_ops(self):
        tel = NullTelemetry()
        assert tel.counter("anything", a="b") is NULL_COUNTER
        assert tel.gauge("g") is NULL_GAUGE
        assert tel.histogram("h", bounds=(1, 2)) is NULL_HISTOGRAM
        tel.counter("x").inc(100)
        tel.gauge("y").set(5)
        tel.histogram("z", bounds=(1,)).observe(3)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0

    def test_null_span_and_phase_record_nothing(self):
        tel = NullTelemetry()
        tel.span("s", 0, 1)
        with tel.phase("p"):
            pass
        assert tel.spans == []
        assert "phases" not in tel.meta
        assert not tel.enabled

    def test_null_jsonl_is_header_and_meta_only(self):
        lines = NullTelemetry().to_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "header"
        assert json.loads(lines[1])["kind"] == "meta"

    def test_coalesce(self):
        tel = Telemetry()
        assert coalesce(tel) is tel
        assert coalesce(None) is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled


class TestSpans:
    def test_span_validation(self):
        with pytest.raises(ValueError):
            Span(name="s", track="t", unit="fortnight", start=0, end=1)
        with pytest.raises(ValueError):
            Span(name="s", track="t", unit="ms", start=2, end=1)

    def test_units_cover_sim_and_wall_domains(self):
        assert {"us", "ms", "s", "slot", "cycle"} <= set(SPAN_UNITS)

    def test_span_duration(self):
        span = Span(name="s", track="t", unit="slot", start=3, end=7)
        assert span.duration == 4


class TestExporters:
    def _populated(self) -> Telemetry:
        tel = Telemetry(name="t")
        tel.counter("hits", outcome="ok").inc(3)
        tel.histogram("width", bounds=(1, 4)).observe(2)
        tel.gauge("wall_depth", wall=True).set(9)
        tel.span("epoch 0", 0, 64, track="epochs", unit="slot")
        tel.span("load", 0.0, 1.5, track="phases", unit="s", wall=True)
        return tel

    def test_jsonl_repeated_build_is_identical_modulo_meta(self):
        def build() -> str:
            return self._populated().to_jsonl()
        assert _strip_meta(build()) == _strip_meta(build())

    def test_jsonl_quarantines_wall_clock_into_meta(self):
        lines = self._populated().to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "header"
        assert records[-1]["kind"] == "meta"
        body = records[1:-1]
        # Nothing wall-clock-derived may appear before the meta line.
        assert all("wall" not in r.get("name", "") for r in body)
        names = {r["name"] for r in body}
        assert {"hits", "width"} <= names
        meta = records[-1]
        assert [m["name"] for m in meta["wall_metrics"]] == ["wall_depth"]
        assert [s["name"] for s in meta["wall_spans"]] == ["load"]

    def test_prometheus_exposition_shape(self):
        text = prometheus_text(self._populated())
        assert "hits_total" in text
        assert 'outcome="ok"' in text
        assert 'le="+Inf"' in text
        assert "width_sum" in text and "width_count" in text

    def test_chrome_trace_schema(self):
        trace = chrome_trace(self._populated())
        events = trace["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert {"ph", "pid", "name"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] > 0
        # Simulated tracks on pid 1, wall-clock tracks on pid 2.
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {1, 2}
        # The whole thing must serialise (Perfetto loads JSON text).
        json.dumps(trace)

    def test_chrome_trace_thread_names_are_metadata(self):
        trace = chrome_trace(self._populated())
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "epochs [slot]" in names

    def test_prometheus_escapes_label_values(self):
        # Exposition format: backslash, newline and double quote must
        # escape inside the quoted label value, or the scrape breaks.
        tel = Telemetry()
        tel.counter("odd", path='a"b\nc\\d').inc()
        text = prometheus_text(tel)
        assert 'path="a\\"b\\nc\\\\d"' in text
        assert "\n" not in text.splitlines()[1]  # sample stays one line
        # The value is recoverable by undoing the three escapes.
        raw = text.split('path="', 1)[1].rsplit('"', 1)[0]
        unescaped = (raw.replace("\\\\", "\x00").replace("\\n", "\n")
                     .replace('\\"', '"').replace("\x00", "\\"))
        assert unescaped == 'a"b\nc\\d'


class TestCounterTracks:
    def test_jsonl_emits_counter_track_line(self):
        tel = Telemetry("t")
        tel.counter_track("util", [(0, 0.25), (64, 0.5)],
                          track="fabric")
        records = [json.loads(line)
                   for line in tel.to_jsonl().splitlines()]
        tracks = [r for r in records if r["kind"] == "counter_track"]
        assert len(tracks) == 1
        assert tracks[0]["name"] == "util"
        assert tracks[0]["points"] == [[0, 0.25], [64, 0.5]]

    def test_wall_counter_track_quarantined_into_meta(self):
        tel = Telemetry("t")
        tel.counter_track("rss", [(0.0, 10.0)], unit="s", wall=True)
        records = [json.loads(line)
                   for line in tel.to_jsonl().splitlines()]
        assert all(r["kind"] != "counter_track" for r in records[:-1])
        meta = records[-1]
        assert meta["wall_counter_tracks"][0]["name"] == "rss"

    def test_chrome_trace_renders_counter_events(self):
        tel = Telemetry("t")
        tel.counter_track("util", [(0, 0.25), (64, 0.5)],
                          track="fabric")
        counters = [e for e in chrome_trace(tel)["traceEvents"]
                    if e.get("ph") == "C"]
        assert [e["args"]["util"] for e in counters] == [0.25, 0.5]
        assert all(e["cat"] == "fabric" for e in counters)

    def test_counter_track_validation(self):
        from repro.telemetry.spans import CounterTrack
        with pytest.raises(ValueError):
            CounterTrack("empty", track="t", unit="slot", points=())
        with pytest.raises(ValueError):
            CounterTrack("rev", track="t", unit="slot",
                         points=((2, 1.0), (1, 2.0)))
        with pytest.raises(ValueError):
            CounterTrack("bad", track="t", unit="lightyear",
                         points=((0, 1.0),))

    def test_null_telemetry_discards_counter_tracks(self):
        tel = NullTelemetry()
        tel.counter_track("anything", [(0, 1.0)])
        assert "counter_track" not in tel.to_jsonl()


class TestReportByteIdentity:
    """Telemetry-on and telemetry-off reports must match byte for byte."""

    def test_serve_demo_identical_with_telemetry(self):
        from repro.service.demo import run_demo
        tel = Telemetry()
        report_on, identical = run_demo(n_events=60, telemetry=tel)
        assert identical, "telemetry leaked into the canonical report"
        report_off, _ = run_demo(n_events=60)
        assert report_on.to_json() == report_off.to_json()
        # ... and the instrumented run actually recorded something.
        assert tel.value("admission.decisions", outcome="accept") > 0
        assert tel.value("executor.dispatch") is None  # no sim here

    def test_serve_demo_telemetry_stream_is_deterministic(self):
        from repro.service.demo import run_demo

        def stream() -> list[str]:
            tel = Telemetry()
            run_demo(n_events=60, telemetry=tel)
            return _strip_meta(tel.to_jsonl())

        first = stream()
        assert first == stream()
        assert len(first) > 2

    def test_campaign_meta_excluded_from_canonical_report(self):
        from repro.campaign import CampaignRunner, micro_campaign
        spec = micro_campaign()
        tel = Telemetry()
        on = CampaignRunner(spec, telemetry=tel).run()
        off = CampaignRunner(spec).run()
        assert on.to_json() == off.to_json()
        assert on.meta["stages"]["total_s"] > 0
        assert on.meta["heartbeats"][-1]["done"] == on.n_runs
        assert sum(entry["runs"] for entry
                   in on.meta["worker_table"].values()) == on.n_runs
        assert tel.value("campaign.runs", status="ok") is not None

    def test_campaign_serial_parallel_meta_both_populated(self):
        from repro.campaign import CampaignRunner, micro_campaign
        spec = micro_campaign()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        assert serial.to_json() == parallel.to_json()
        assert len(parallel.meta["worker_table"]) >= 1
        assert "meta" not in json.loads(serial.to_json())


def _cbr_traffic(config):
    from repro.simulation.traffic import ConstantBitRate
    return {name: ConstantBitRate.from_rate(
        ca.spec.throughput_bytes_per_s, config.frequency_hz, config.fmt)
        for name, ca in config.allocation.channels.items()}


class TestExecutorTelemetry:
    def test_flit_backend_counts_epochs_and_patterns(self, tiny_config):
        from repro.simulation.backend import SimRequest, create_backend
        tel = Telemetry()
        backend = create_backend("flit", tiny_config, telemetry=tel)
        result = backend.run(SimRequest(
            n_slots=400, traffic=_cbr_traffic(tiny_config)))
        assert result.meta["executor"] in ("compiled", "per-flit")
        assert tel.value("executor.dispatch",
                         path=result.meta["executor"]) == 1
        assert tel.value("executor.epochs") >= 1
        assert result.meta["executor_stats"]["epochs"] >= 1
        assert any(s.track == "epochs" for s in tel.spans)

    def test_all_backends_name_their_executor(self, tiny_config):
        from repro.simulation.backend import SimRequest, create_backend
        for kind in ("flit", "cycle", "be"):
            backend = create_backend(kind, tiny_config)
            result = backend.run(SimRequest(
                n_slots=300, traffic=_cbr_traffic(tiny_config)))
            executor = result.meta.get("executor")
            assert executor, f"{kind} backend did not name its executor"
            assert f"[{executor}]" in result.summary()


class TestEmptyLatencySummary:
    def test_of_empty_equals_empty(self):
        from repro.simulation.monitors import LatencySummary
        summary = LatencySummary.of([])
        assert summary == LatencySummary.empty()
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_latency_digest_degrades_gracefully(self):
        from repro.simulation.monitors import (StatsCollector,
                                               latency_digest)
        digest = latency_digest("idle", StatsCollector(), 100, "slots",
                                500e6)
        assert "no deliveries" in digest


class TestProfiling:
    def test_run_profiled_returns_result_and_prints_stats(self, capsys):
        import io

        from repro.telemetry import run_profiled
        stream = io.StringIO()
        result = run_profiled(lambda: sum(range(100)), stream=stream)
        assert result == 4950
        out = stream.getvalue()
        assert "profile" in out and "cumulative" in out
