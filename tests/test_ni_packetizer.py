"""Tests for the packetiser and the network-interface model."""

from __future__ import annotations

from collections import deque

import pytest

from repro.clocking.clock import ClockDomain
from repro.core.exceptions import ConfigurationError
from repro.core.slot_table import SlotTable
from repro.core.words import (WordFormat, decode_header, header_credits,
                              header_queue)
from repro.ni.network_interface import (NetworkInterface, RxQueueConfig,
                                        TxChannelConfig)
from repro.ni.packetizer import Packetizer, TxMessage
from repro.simulation.engine import Engine
from repro.simulation.monitors import StatsCollector
from repro.simulation.signals import Phit


def _message(msg_id=0, words=2, created=0):
    return TxMessage(message_id=msg_id, words=deque(range(words)),
                     created_cycle=created)


class TestPacketizer:
    def test_header_flit_layout(self, fmt):
        pk = Packetizer("ch", path_field=0b101, queue_id=3, fmt=fmt)
        pk.enqueue(_message(words=2))
        flit = pk.next_flit(credits=7, next_slot_is_ours=False)
        assert flit.has_header
        assert flit.eop
        path, queue, credits = decode_header(flit.header_word, fmt)
        assert path == 0b101
        assert queue == 3
        assert credits == 7
        assert flit.meta.payload_bytes == 8

    def test_message_larger_than_flit_spans_packets(self, fmt):
        pk = Packetizer("ch", 0, 0, fmt, max_packet_flits=1)
        pk.enqueue(_message(words=5))
        flits = []
        while pk.has_data:
            flits.append(pk.next_flit(credits=0, next_slot_is_ours=False))
        # 5 words at 2 payload words per (header-bearing) flit.
        assert len(flits) == 3
        assert all(f.has_header for f in flits)
        assert flits[-1].meta.message_last

    def test_continuation_when_next_slot_ours(self, fmt):
        pk = Packetizer("ch", 0, 0, fmt, max_packet_flits=4)
        pk.enqueue(_message(words=8))
        first = pk.next_flit(credits=0, next_slot_is_ours=True)
        assert not first.eop
        second = pk.next_flit(credits=0, next_slot_is_ours=True)
        assert not second.has_header
        # Continuation flits carry a full flit of payload.
        assert second.meta.payload_bytes == fmt.flit_size * 4

    def test_packet_length_limit(self, fmt):
        pk = Packetizer("ch", 0, 0, fmt, max_packet_flits=2)
        pk.enqueue(_message(words=20))
        first = pk.next_flit(credits=0, next_slot_is_ours=True)
        second = pk.next_flit(credits=0, next_slot_is_ours=True)
        assert not first.eop
        assert second.eop  # limit reached, packet closed

    def test_message_boundary_forces_eop(self, fmt):
        pk = Packetizer("ch", 0, 0, fmt)
        pk.enqueue(_message(msg_id=0, words=2))
        pk.enqueue(_message(msg_id=1, words=2))
        first = pk.next_flit(credits=0, next_slot_is_ours=True)
        assert first.eop  # messages never share a packet
        assert first.meta.message_last

    def test_sequence_numbers_monotonic(self, fmt):
        pk = Packetizer("ch", 0, 0, fmt)
        pk.enqueue(_message(words=6))
        seqs = []
        while pk.has_data:
            seqs.append(pk.next_flit(
                credits=0, next_slot_is_ours=False).meta.sequence)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_credit_only_flit(self, fmt):
        pk = Packetizer("ch", 0b11, 5, fmt)
        flit = pk.credit_only_flit(credits=9)
        assert flit.eop and flit.has_header
        assert header_credits(flit.header_word, fmt) == 9
        assert header_queue(flit.header_word, fmt) == 5
        assert flit.meta.payload_bytes == 0

    def test_next_flit_without_data_raises(self, fmt):
        pk = Packetizer("ch", 0, 0, fmt)
        with pytest.raises(ConfigurationError):
            pk.next_flit(credits=0, next_slot_is_ours=False)

    def test_pending_words_accounting(self, fmt):
        pk = Packetizer("ch", 0, 0, fmt)
        pk.enqueue(_message(words=5))
        assert pk.pending_words == 5
        pk.next_flit(credits=0, next_slot_is_ours=False)
        assert pk.pending_words == 3


class _Loopback:
    """Connects an NI's output wire straight back to its input."""

    def __init__(self, ni):
        self.ni = ni

    def compute(self, cycle, time_ps):
        pass

    def commit(self, cycle, time_ps):
        phit = self.ni.outputs[0].sample()
        if phit.valid:
            self.ni.inputs[0].drive(phit)


class TestNetworkInterface:
    def _make_ni(self, fmt, slots=(0, 2), queue=0, credits=None,
                 stats=None):
        table = SlotTable(4)
        for slot in slots:
            table.reserve(slot, "ch")
        ni = NetworkInterface(
            "ni", table, fmt,
            tx_channels=[TxChannelConfig(
                name="ch", path_field=0, queue_id=queue,
                initial_credits=credits)],
            rx_queues=[RxQueueConfig(queue_id=queue, channel="ch")],
            stats=stats or StatsCollector())
        return ni

    def _run(self, ni, n_cycles, enqueue_at=None):
        engine = Engine()
        clock = ClockDomain("clk", period_ps=2000)
        loop = _Loopback(ni)

        class Feeder:
            def __init__(self, events):
                self.events = list(events or [])

            def compute(self, cycle, time_ps):
                for at, msg in list(self.events):
                    if at == cycle:
                        ni.enqueue_message("ch", msg)
                        self.events.remove((at, msg))

            def commit(self, cycle, time_ps):
                pass

        engine.add_component(clock, Feeder(enqueue_at))
        engine.add_component(clock, ni)
        engine.add_component(clock, loop)
        engine.add_wire(clock, ni.outputs[0])
        engine.add_wire(clock, ni.inputs[0])
        engine.run_until(n_cycles * 2000)
        return engine

    def test_injects_only_in_owned_slots(self, fmt):
        stats = StatsCollector()
        ni = self._make_ni(fmt, slots=(2,), stats=stats)
        self._run(ni, 24, enqueue_at=[(0, _message(i)) for i in range(3)])
        slots = [r.slot_index % 4 for r in stats.channel("ch").injections]
        assert slots and all(s == 2 for s in slots)

    def test_no_data_no_emission(self, fmt):
        ni = self._make_ni(fmt)
        self._run(ni, 24)
        assert ni.flits_injected == 0

    def test_loopback_delivery_and_latency(self, fmt):
        stats = StatsCollector()
        ni = self._make_ni(fmt, slots=(0,), stats=stats)
        self._run(ni, 24, enqueue_at=[(0, _message(0, words=2))])
        deliveries = stats.channel("ch").deliveries
        assert len(deliveries) == 1
        # Injected in slot 0 (cycles 0-2), looped back next cycle: the
        # final word returns at cycle 3 + 1 = 4.
        assert deliveries[0].delivered_cycle == 4

    def test_multi_flit_message_reassembled(self, fmt):
        stats = StatsCollector()
        ni = self._make_ni(fmt, slots=(0, 1, 2, 3), stats=stats)
        self._run(ni, 48, enqueue_at=[(0, _message(0, words=10))])
        deliveries = stats.channel("ch").deliveries
        assert len(deliveries) == 1
        assert deliveries[0].payload_bytes == 40

    def test_credit_stall_and_recovery(self, fmt):
        """With credits for one flit only, the loopback returns credits
        (the channel is its own reverse channel here), so traffic keeps
        flowing — but strictly slower than without flow control."""
        stats = StatsCollector()
        table = SlotTable(4)
        table.reserve(0, "ch")
        ni = NetworkInterface(
            "ni", table, fmt,
            tx_channels=[TxChannelConfig(
                name="ch", path_field=0, queue_id=0,
                initial_credits=2, credit_source_queue=0)],
            rx_queues=[RxQueueConfig(queue_id=0, channel="ch",
                                     credit_target_tx="ch")],
            stats=stats)
        self._run(ni, 64, enqueue_at=[(0, _message(i, words=2))
                                      for i in range(8)])
        assert ni.flits_injected >= 2
        assert ni.stalled_slots > 0
        assert len(stats.channel("ch").deliveries) >= 2

    def test_unknown_queue_raises(self, fmt):
        from repro.core.exceptions import SimulationError
        ni = self._make_ni(fmt, queue=0)
        ni._rx.clear()  # remove the queue: arriving packet must fail
        with pytest.raises(SimulationError):
            self._run(ni, 24, enqueue_at=[(0, _message(0))])

    def test_duplicate_tx_channel_rejected(self, fmt):
        table = SlotTable(4)
        cfg = TxChannelConfig(name="x", path_field=0, queue_id=0)
        with pytest.raises(ConfigurationError):
            NetworkInterface("ni", table, fmt, tx_channels=[cfg, cfg])

    def test_queue_id_overflow_rejected(self, fmt):
        table = SlotTable(4)
        with pytest.raises(ConfigurationError):
            NetworkInterface("ni", table, fmt, rx_queues=[
                RxQueueConfig(queue_id=fmt.max_queue + 1, channel="x")])
