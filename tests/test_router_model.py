"""Cycle-accurate tests of the HPU, switch and three-stage router."""

from __future__ import annotations

import pytest

from repro.clocking.clock import ClockDomain
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.flits import Flit
from repro.core.words import WordFormat, encode_header
from repro.router.hpu import HeaderParsingUnit
from repro.router.switch import Switch
from repro.router.synchronous import SynchronousRouter
from repro.simulation.engine import Engine
from repro.simulation.signals import IDLE, Phit


def _header_phit(fmt, ports, eop=False, queue=0):
    word = encode_header(ports, queue=queue, credits=0, fmt=fmt)
    return Phit(word=word, valid=True, eop=eop, word_index=0)


class TestHPU:
    def test_selects_port_from_header(self, fmt):
        hpu = HeaderParsingUnit(fmt)
        port, routed = hpu.process(_header_phit(fmt, [5, 2]))
        assert port == 5
        # Path shifted: next router would see port 2.
        assert routed.word & fmt.max_port == 2

    def test_holds_port_until_eop(self, fmt):
        hpu = HeaderParsingUnit(fmt)
        hpu.process(_header_phit(fmt, [4]))
        port, _ = hpu.process(Phit(word=123, valid=True, eop=False,
                                   word_index=1))
        assert port == 4
        assert hpu.busy
        port, _ = hpu.process(Phit(word=456, valid=True, eop=True,
                                   word_index=2))
        assert port == 4
        assert not hpu.busy

    def test_single_word_packet_resets_immediately(self, fmt):
        hpu = HeaderParsingUnit(fmt)
        port, _ = hpu.process(_header_phit(fmt, [3], eop=True))
        assert port == 3
        assert not hpu.busy

    def test_idle_words_pass_through(self, fmt):
        hpu = HeaderParsingUnit(fmt)
        port, phit = hpu.process(IDLE)
        assert port is None
        assert not phit.valid

    def test_reset(self, fmt):
        hpu = HeaderParsingUnit(fmt)
        hpu.process(_header_phit(fmt, [4]))
        hpu.reset()
        assert not hpu.busy


class TestSwitch:
    def test_routes_distinct_outputs(self):
        switch = Switch(3)
        p0 = Phit(word=1, valid=True, eop=False)
        p1 = Phit(word=2, valid=True, eop=False)
        outputs = switch.route([(2, p0), (0, p1), (None, IDLE)])
        assert outputs[2].word == 1
        assert outputs[0].word == 2
        assert not outputs[1].valid

    def test_contention_raises(self):
        switch = Switch(2)
        phit = Phit(word=1, valid=True, eop=False)
        with pytest.raises(SimulationError):
            switch.route([(1, phit), (1, phit)])

    def test_invalid_port_raises(self):
        switch = Switch(2)
        phit = Phit(word=1, valid=True, eop=False)
        with pytest.raises(SimulationError):
            switch.route([(5, phit)])

    def test_invalid_phit_ignored_even_with_port(self):
        switch = Switch(2)
        outputs = switch.route([(1, IDLE)])
        assert not outputs[1].valid


class _WireDriver:
    """Drives a scripted sequence of phits onto a wire."""

    def __init__(self, wire, script):
        self.wire = wire
        self.script = dict(script)

    def compute(self, cycle, time_ps):
        pass

    def commit(self, cycle, time_ps):
        self.wire.drive(self.script.get(cycle, IDLE))


class _WireProbe:
    def __init__(self, wire):
        self.wire = wire
        self.samples: list[Phit] = []

    def compute(self, cycle, time_ps):
        self.samples.append(self.wire.sample())

    def commit(self, cycle, time_ps):
        pass


class TestSynchronousRouter:
    def _run(self, fmt, script, n_cycles=12, n_ports=2):
        engine = Engine()
        clock = ClockDomain("clk", period_ps=2000)
        router = SynchronousRouter("r", n_ports, n_ports, fmt)
        driver = _WireDriver(router.inputs[0], script)
        probes = [_WireProbe(router.outputs[o]) for o in range(n_ports)]
        for probe in probes:
            engine.add_component(clock, probe)
        engine.add_component(clock, driver)
        engine.add_component(clock, router)
        engine.add_wire(clock, router.inputs[0])
        for o in range(n_ports):
            engine.add_wire(clock, router.outputs[o])
        engine.run_until(n_cycles * 2000)
        return probes

    def test_three_cycle_forwarding(self, fmt):
        """A word on the input wire appears on the output 3 cycles later."""
        script = {0: _header_phit(fmt, [1], eop=True)}
        probes = self._run(fmt, script)
        # Driver commits at cycle 0 -> wire carries it at cycle 1's compute;
        # the router needs 3 more cycles; the probe samples it at cycle 4.
        valid_at = [i for i, p in enumerate(probes[1].samples) if p.valid]
        assert valid_at == [4]

    def test_flit_words_stay_consecutive(self, fmt):
        header = _header_phit(fmt, [0])
        w1 = Phit(word=0xAA, valid=True, eop=False, word_index=1)
        w2 = Phit(word=0xBB, valid=True, eop=True, word_index=2)
        probes = self._run(fmt, {0: header, 1: w1, 2: w2})
        valid_at = [i for i, p in enumerate(probes[0].samples) if p.valid]
        assert valid_at == [4, 5, 6]
        words = [probes[0].samples[i].word for i in valid_at[1:]]
        assert words == [0xAA, 0xBB]

    def test_packet_follows_single_header(self, fmt):
        """Only the first word carries routing; the rest follow its port."""
        header = _header_phit(fmt, [1])
        w1 = Phit(word=1, valid=True, eop=False, word_index=1)
        w2 = Phit(word=2, valid=True, eop=True, word_index=2)
        probes = self._run(fmt, {0: header, 1: w1, 2: w2})
        assert sum(p.valid for p in probes[1].samples) == 3
        assert sum(p.valid for p in probes[0].samples) == 0

    def test_path_shift_visible_downstream(self, fmt):
        """The forwarded header selects the *next* hop's port."""
        script = {0: _header_phit(fmt, [1, 3], eop=True)}
        probes = self._run(fmt, script)
        forwarded = next(p for p in probes[1].samples if p.valid)
        assert forwarded.word & fmt.max_port == 3

    def test_contention_detected(self, fmt):
        """Two inputs sending to one output is a schedule violation."""
        engine = Engine()
        clock = ClockDomain("clk", period_ps=2000)
        router = SynchronousRouter("r", 2, 2, fmt)
        d0 = _WireDriver(router.inputs[0],
                         {0: _header_phit(fmt, [0], eop=True)})
        d1 = _WireDriver(router.inputs[1],
                         {0: _header_phit(fmt, [0], eop=True)})
        engine.add_component(clock, d0)
        engine.add_component(clock, d1)
        engine.add_component(clock, router)
        for wire in router.inputs + router.outputs:
            engine.add_wire(clock, wire)
        with pytest.raises(SimulationError):
            engine.run_until(10 * 2000)

    def test_reset_flushes_pipeline(self, fmt):
        router = SynchronousRouter("r", 2, 2, fmt)
        router._stage1[0] = _header_phit(fmt, [0])
        router.reset()
        assert router.occupancy() == 0

    def test_bad_geometry_rejected(self, fmt):
        with pytest.raises(ConfigurationError):
            SynchronousRouter("r", 0, 2, fmt)

    def test_arity(self, fmt):
        assert SynchronousRouter("r", 3, 5, fmt).arity == 5
