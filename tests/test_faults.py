"""Fault injection, degraded-mode re-allocation, and survivability."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.runner import execute_run
from repro.campaign.spec import (CampaignSpec, RunSpec, ScenarioSpec,
                                 TopologySpec, WorkloadSpec, derive_seed)
from repro.core.allocation import excluded_link_keys
from repro.core.configuration import configure
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.faults.model import FaultEvent, FaultSchedule, FaultSpec
from repro.service.churn import ChurnSpec, ChurnWorkload
from repro.service.controller import SessionService, merge_events
from repro.service.qos import QosClass
from repro.topology.builders import concentrated_mesh, mesh


def build_allocation(seed=3, n_channels=20, topology=None):
    """A mid-utilisation allocation on a mesh with path diversity."""
    topology = topology or mesh(3, 3, nis_per_router=2)
    use_case, mapping = WorkloadSpec(
        n_channels=n_channels, n_ips=18).build(topology, seed)
    config = configure(topology, use_case, table_size=16,
                       frequency_hz=500e6, mapping=mapping,
                       require_met=False)
    return topology, config.allocation


def allocation_fingerprint(allocation):
    """Canonical byte string of an allocation's full reservation state."""
    return json.dumps({
        "channels": {
            name: {"links": [list(k) for k in ca.path.link_keys()],
                   "slots": list(ca.slots)}
            for name, ca in sorted(allocation.channels.items())},
        "tables": {
            f"{k[0]}->{k[1]}": {str(s): t.owner(s)
                                for s in t.reserved_slots()}
            for k, t in sorted(allocation.link_tables.items())},
    }, sort_keys=True).encode()


class TestFaultSchedule:
    def test_deterministic_per_seed(self):
        topo = mesh(3, 3, nis_per_router=2)
        spec = FaultSpec(n_faults=6)
        a = FaultSchedule(spec, topo, 42).events()
        b = FaultSchedule(spec, topo, 42).events()
        c = FaultSchedule(spec, topo, 43).events()
        assert a == b
        assert a != c

    def test_every_repair_follows_its_failure(self):
        topo = mesh(3, 3, nis_per_router=2)
        schedule = FaultSchedule(FaultSpec(n_faults=8), topo, 7)
        down = set()
        for event in schedule.events():
            if event.action == "fail":
                assert event.target not in down
                down.add(event.target)
            else:
                assert event.target in down
                down.remove(event.target)
        assert not down  # default spec repairs everything

    def test_no_repair_mode(self):
        topo = mesh(2, 2, nis_per_router=1)
        schedule = FaultSchedule(
            FaultSpec(n_faults=3, repair=False), topo, 1)
        assert all(e.action == "fail" for e in schedule.events())
        links, routers = schedule.failed_at(float("inf"))
        assert len(links) + len(routers) == len(schedule.events())

    def test_failed_at_and_excluded_at(self):
        topo = mesh(3, 3, nis_per_router=2)
        schedule = FaultSchedule(FaultSpec(n_faults=5), topo, 11)
        first = schedule.events()[0]
        links, routers = schedule.failed_at(first.time_s)
        assert (first.target in links) or (first.target in routers)
        assert schedule.excluded_at(first.time_s)
        # Before anything fails, nothing is excluded.
        assert schedule.excluded_at(first.time_s / 2) == frozenset()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(n_faults=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(router_fraction=1.5)
        with pytest.raises(ConfigurationError):
            FaultEvent(-1.0, "fail", "link", ("a", "b"))
        with pytest.raises(ConfigurationError):
            FaultEvent(0.0, "explode", "link", ("a", "b"))


class TestExcludedLinkKeys:
    def test_router_failure_disables_incident_links(self):
        topo = mesh(2, 2, nis_per_router=1)
        excluded = excluded_link_keys(topo, failed_routers=["r0_0"])
        assert all("r0_0" in key for key in excluded)
        # Two mesh neighbours (bidirectional) plus one NI each way.
        assert len(excluded) == 6

    def test_unknown_targets_raise(self):
        topo = mesh(2, 2, nis_per_router=1)
        with pytest.raises(ConfigurationError):
            excluded_link_keys(topo, [("nope", "r0_0")])
        with pytest.raises(ConfigurationError):
            excluded_link_keys(topo, failed_routers=["r9_9"])


class TestRebuildExcluding:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_zero_failures_is_byte_identical(self, seed):
        """Property: an empty failure set reproduces any allocation."""
        _, allocation = build_allocation(seed=seed, n_channels=10)
        report = allocation.rebuild_excluding()
        assert report.n_affected == 0
        assert report.untouched_intact
        assert report.guarantee_retention == 1.0
        assert (allocation_fingerprint(report.allocation)
                == allocation_fingerprint(allocation))
        # Untouched channels are carried over as the *same* objects.
        assert all(report.allocation.channels[name] is ca
                   for name, ca in allocation.channels.items())

    def _loaded_transit_link(self, allocation):
        """The router-router link carrying the most channels."""
        from collections import Counter
        used = Counter()
        for ca in allocation.channels.values():
            for key in ca.path.link_keys():
                if key[0].startswith("r") and key[1].startswith("r"):
                    used[key] += 1
        return used.most_common(1)[0][0]

    def test_transit_link_failure_reroutes(self):
        _, allocation = build_allocation()
        link = self._loaded_transit_link(allocation)
        report = allocation.rebuild_excluding(failed_links=[link])
        assert report.n_affected > 0
        record = report.to_record()
        assert record["n_affected"] == (
            record["n_rerouted_same_bounds"]
            + record["n_rerouted_degraded"] + record["n_dropped"])
        # Nothing in the rebuilt allocation touches the dead link.
        for ca in report.allocation.channels.values():
            assert link not in ca.path.link_keys()
        report.allocation.validate()
        assert report.untouched_intact
        # The original allocation was never mutated.
        allocation.validate()
        assert len(allocation.channels) == record["n_channels"]

    def test_rerouted_channels_still_meet_requirements(self):
        from repro.core.analysis import analyse
        _, allocation = build_allocation()
        link = self._loaded_transit_link(allocation)
        report = allocation.rebuild_excluding(failed_links=[link])
        bounds = analyse(report.allocation)
        for name, verdict in report.verdicts.items():
            if verdict.verdict.startswith("rerouted"):
                assert bounds[name].meets_all

    def test_router_failure_drops_stranded_channels(self):
        topology, allocation = build_allocation()
        # Channels whose endpoint NI hangs off the dead router cannot
        # survive; transit-only users may reroute.
        router = "r1_1"
        stranded = {
            name for name, ca in allocation.channels.items()
            if topology.attached_router(ca.path.source) == router
            or topology.attached_router(ca.path.dest) == router}
        report = allocation.rebuild_excluding(failed_routers=[router])
        for name in stranded:
            assert report.verdicts[name].verdict == "dropped"
        for ca in report.allocation.channels.values():
            assert router not in ca.path.routers

    def test_raise_mode_surfaces_channel_and_reason(self):
        topology, allocation = build_allocation()
        stranded_router = topology.attached_router(
            sorted(allocation.channels.values(),
                   key=lambda ca: ca.spec.name)[0].path.source)
        with pytest.raises(AllocationError) as excinfo:
            allocation.rebuild_excluding(
                failed_routers=[stranded_router],
                on_infeasible="raise")
        assert excinfo.value.channel is not None
        assert excinfo.value.reason
        assert excinfo.value.channel in allocation.channels

    def test_bad_arguments(self):
        _, allocation = build_allocation(n_channels=4)
        with pytest.raises(ConfigurationError):
            allocation.rebuild_excluding(on_infeasible="explode")
        with pytest.raises(ConfigurationError):
            allocation.rebuild_excluding(failed_links=[("a", "b")])


class TestServiceFaults:
    def _service(self, topology, **kwargs):
        return SessionService(topology, table_size=32,
                              frequency_hz=500e6, name="t", seed=1,
                              **kwargs)

    def test_fault_evicts_and_reallocates(self):
        topology = mesh(3, 3, nis_per_router=2)
        churn = ChurnWorkload(ChurnSpec(n_sessions=60), topology, 5)
        schedule = FaultSchedule(
            FaultSpec(n_faults=4, fault_rate_per_s=400.0,
                      mean_repair_s=0.004), topology, 9)
        service = self._service(topology, record_timeline=True)
        report = service.run(merge_events(churn.events(),
                                          schedule.events()))
        faults = report.faults
        assert faults is not None
        assert faults["n_failures"] == 4
        assert faults["n_evicted"] == (faults["n_reallocated"]
                                       + faults["n_dropped"])
        assert report.invariant["ok"]
        # The faults section is part of the canonical JSON.
        assert "faults" in json.loads(report.to_json())

    def test_fault_free_report_has_no_faults_section(self):
        topology = mesh(2, 2, nis_per_router=2)
        churn = ChurnWorkload(ChurnSpec(n_sessions=20), topology, 5)
        report = self._service(topology).run(churn.events())
        assert report.faults is None
        assert "faults" not in json.loads(report.to_json())

    def test_repair_restores_prefault_feasible_set(self):
        """Satellite property: after fail+repair on the Section VII
        mesh, the admission feasible set equals the pre-fault one."""
        topology = concentrated_mesh(4, 3, nis_per_router=4)
        service = self._service(topology)
        churn = ChurnWorkload(ChurnSpec(n_sessions=40), topology, 5)
        opens = [e for e in churn.events() if e.kind == "open"][:20]
        for event in opens:
            service.process(event)
        # Fail (and repair) a link no active session traverses, so the
        # occupancy itself is untouched and the comparison is exact.
        used = set()
        for ca in service.active.values():
            used.update(ca.path.link_keys())
        link = next(key for key in topology.iter_link_keys()
                    if key not in used and key[0].startswith("r")
                    and key[1].startswith("r"))
        probe_class = QosClass("probe", throughput_mb_s=20.0,
                               max_latency_ns=500.0)

        def feasible_set():
            verdicts = []
            nis = topology.nis[:8]
            for i, src in enumerate(nis):
                for dst in nis:
                    if src == dst:
                        continue
                    spec = probe_class.channel_spec(
                        f"probe_{src}_{dst}", src, dst)
                    try:
                        service.admission.admit(spec, src, dst)
                    except AllocationError:
                        verdicts.append(False)
                    else:
                        service.admission.release(spec.name)
                        verdicts.append(True)
            return verdicts

        before = feasible_set()
        service.process_fault(FaultEvent(1.0, "fail", "link", link))
        degraded = feasible_set()
        service.process_fault(FaultEvent(1.1, "repair", "link", link))
        after = feasible_set()
        assert service.failed_links == frozenset()
        assert service.admission.excluded_links == frozenset()
        assert before == after
        # While failed, routes over the dead link are refused.
        assert degraded.count(True) <= before.count(True)

    def test_fault_before_churn_leaves_decisions_unchanged(self):
        topology = mesh(3, 3, nis_per_router=2)
        churn = ChurnWorkload(ChurnSpec(n_sessions=40), topology, 5)
        events = churn.events()
        first_arrival = events[0].time_s
        fail = FaultEvent(first_arrival / 3, "fail", "link",
                          ("r0_0", "r1_0"))
        repair = FaultEvent(first_arrival / 2, "repair", "link",
                            ("r0_0", "r1_0"))
        baseline = self._service(topology).run(events)
        faulted = self._service(topology).run(
            merge_events(events, (fail, repair)))
        assert faulted.totals == baseline.totals
        assert faulted.faults["n_evicted"] == 0

    def test_churn_fault_timeline_is_composable(self):
        from repro.simulation.composability import (replay_traffic,
                                                    verify_timeline)
        topology = mesh(3, 3, nis_per_router=2)
        churn = ChurnWorkload(ChurnSpec(n_sessions=40), topology, 5)
        schedule = FaultSchedule(
            FaultSpec(n_faults=3, fault_rate_per_s=400.0,
                      mean_repair_s=0.004), topology, 9)
        service = self._service(topology, record_timeline=True)
        report = service.run(merge_events(churn.events(limit=60),
                                          schedule.events()))
        assert report.faults["n_evicted"] > 0
        timeline = service.timeline(horizon_slots=900)
        verdict = verify_timeline(timeline, replay_traffic(timeline),
                                  scenario="fault-test")
        assert verdict.is_composable
        assert verdict.n_survivors if hasattr(verdict, "n_survivors") \
            else verdict.survivors


class TestFaultScenarios:
    def _scenario(self, **overrides):
        base = dict(
            name="faults-test", mode="faults", backend="flit",
            topology=TopologySpec(kind="mesh", cols=3, rows=3,
                                  nis_per_router=2),
            churn=ChurnSpec(n_sessions=20),
            faults=FaultSpec(n_faults=2, fault_rate_per_s=400.0,
                             mean_repair_s=0.004),
            n_slots=500, table_size=16)
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._scenario(mode="serve")  # fault spec needs mode=faults
        with pytest.raises(ConfigurationError):
            self._scenario(backend="cycle")  # cannot reconfigure mid-run

    def test_execute_run_is_deterministic(self):
        spec = CampaignSpec(name="ft", scenarios=(self._scenario(),),
                            seeds=(1,))
        run = spec.expand()[0]
        first = execute_run(run)
        second = execute_run(run)
        assert first["status"] == "ok"
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        result = first["result"]
        surv = result["survivability"]
        assert 0.0 <= surv["admission_retention"] <= 1.0
        assert 0.0 <= surv["guarantee_retention"] <= 1.0
        assert result["composability"]["composable"] in (True, False)

    def test_fault_campaign_preset_shape(self):
        from repro.campaign.presets import fault_campaign, preset_by_name
        spec = fault_campaign()
        assert len(spec.scenarios) == 8  # 2 topo x 2 adversary x 2 sizes
        assert all(s.mode == "faults" for s in spec.scenarios)
        assert preset_by_name("fault").name == "faults"


class TestSpareCapacity:
    def test_validation(self):
        from repro.core.application import Application, UseCase
        from repro.core.connection import MB, ChannelSpec
        from repro.design.space import DesignSpec, provisioned_use_case
        use_case = UseCase("w", (Application("a", (
            ChannelSpec("c", "x", "y", 8 * MB, application="a"),)),))
        with pytest.raises(ConfigurationError):
            DesignSpec(use_case=use_case, spare_capacity=-0.1)
        with pytest.raises(ConfigurationError):
            provisioned_use_case(use_case, -1.0)

    def test_provisioning_scales_throughput_only(self):
        from repro.core.application import Application, UseCase
        from repro.core.connection import MB, ChannelSpec
        from repro.design.space import provisioned_use_case
        use_case = UseCase("w", (Application("a", (
            ChannelSpec("c", "x", "y", 8 * MB, max_latency_ns=400.0,
                        application="a"),)),))
        scaled = provisioned_use_case(use_case, 0.5)
        assert scaled.channels[0].throughput_bytes_per_s == 12 * MB
        assert scaled.channels[0].max_latency_ns == 400.0
        assert provisioned_use_case(use_case, 0.0) is use_case

    def test_heavy_provisioning_rejects_candidate(self):
        from repro.campaign.spec import TopologySpec
        from repro.design.explorer import evaluate_candidate
        from repro.design.space import DesignSpec, section7_demo_use_case
        use_case = section7_demo_use_case()
        topo = TopologySpec(kind="mesh", cols=2, rows=2,
                            nis_per_router=4)
        base = evaluate_candidate(
            topo, DesignSpec(use_case=use_case, max_frequency_mhz=500.0,
                             mapping="traffic_balanced"), 16, seed=5)
        heavy = evaluate_candidate(
            topo, DesignSpec(use_case=use_case, max_frequency_mhz=500.0,
                             mapping="traffic_balanced",
                             spare_capacity=3.0), 16, seed=5)
        assert base["status"] == "ok"
        assert heavy["status"] in ("pruned", "infeasible")
        assert heavy["spare_capacity"] == 3.0


class TestReconfigurationFaults:
    def test_apply_fault_records_timeline(self):
        from repro.core.allocation import SlotAllocator
        from repro.core.reconfiguration import ReconfigurationManager
        from repro.core.timeline import TimelineRecorder
        topology = mesh(3, 3, nis_per_router=2)
        use_case, mapping = WorkloadSpec(
            n_channels=12, n_ips=12).build(topology, 3)
        allocator = SlotAllocator(topology, table_size=16,
                                  frequency_hz=500e6)
        recorder = TimelineRecorder(topology, table_size=16,
                                    frequency_hz=500e6)
        manager = ReconfigurationManager(allocator, mapping,
                                         recorder=recorder)
        for app in use_case.applications:
            manager.start_application(app, at_s=0.0)
        report = manager.apply_fault(failed_links=[("r1_1", "r1_0")],
                                     at_s=1.0)
        manager.allocation.validate()
        assert report.untouched_intact
        assert any(h.action == "fault" for h in manager.history)
        timeline = recorder.build(horizon_slots=2000)
        assert timeline.n_epochs >= 2
        # The failure persists: later starts must avoid the dead link.
        assert ("r1_1", "r1_0") in allocator.excluded_links
        from repro.core.application import Application
        from repro.core.connection import MB, ChannelSpec
        ips = sorted(use_case.ips)[:2]
        late = Application("late", (ChannelSpec(
            "late0", ips[0], ips[1], 5 * MB, application="late"),))
        manager.start_application(late, at_s=2.0)
        for ca in manager.allocation.channels.values():
            assert ("r1_1", "r1_0") not in ca.path.link_keys()
        # Repair restores the allocator's pre-fault route freedom.
        manager.repair_fault(failed_links=[("r1_1", "r1_0")])
        assert manager.failed_links == frozenset()
        assert allocator.excluded_links == frozenset()
