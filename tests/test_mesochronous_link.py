"""Tests of the bi-synchronous FIFO and the mesochronous link stage.

The central claims from Section V, verified exhaustively over skews:

* a flit entering the stage in slot ``s`` leaves in slot ``s + 1`` of the
  reading clock — never earlier, never later — for every skew within half
  a clock period;
* the three words of a flit are presented in consecutive reading-clock
  cycles;
* the 4-word FIFO never overflows.
"""

from __future__ import annotations

import pytest

from repro.clocking.clock import ClockDomain
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.words import WordFormat, encode_header
from repro.link.bisync_fifo import BisyncFifo
from repro.link.mesochronous import MesochronousLinkStage, make_stage
from repro.simulation.engine import Engine
from repro.simulation.signals import IDLE, Phit

PERIOD = 2000  # 500 MHz in ps


class TestBisyncFifo:
    def test_forward_delay_gates_visibility(self):
        fifo = BisyncFifo("f", 4, forward_delay_ps=1000)
        phit = Phit(word=1, valid=True, eop=False)
        fifo.write(phit, time_ps=0)
        assert fifo.readable(999) == 0
        assert fifo.readable(1000) == 1
        assert fifo.peek(500) is None
        assert fifo.peek(1500).word == 1

    def test_fifo_order(self):
        fifo = BisyncFifo("f", 4, forward_delay_ps=0)
        for i in range(3):
            fifo.write(Phit(word=i, valid=True, eop=False), time_ps=i)
        assert [fifo.pop(10).word for _ in range(3)] == [0, 1, 2]

    def test_overflow_raises(self):
        fifo = BisyncFifo("f", 2, forward_delay_ps=0)
        fifo.write(IDLE, 0)
        fifo.write(IDLE, 0)
        with pytest.raises(SimulationError):
            fifo.write(IDLE, 0)

    def test_underflow_raises(self):
        fifo = BisyncFifo("f", 2, forward_delay_ps=0)
        with pytest.raises(SimulationError):
            fifo.pop(100)

    def test_max_occupancy_tracked(self):
        fifo = BisyncFifo("f", 4, forward_delay_ps=0)
        fifo.write(IDLE, 0)
        fifo.write(IDLE, 0)
        fifo.pop(1)
        assert fifo.max_occupancy == 2

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            BisyncFifo("f", 0, 0)


class _SlotAlignedSource:
    """Drives one flit per scripted slot, slot-aligned like an NI/router."""

    def __init__(self, wire, fmt, slots):
        self.wire = wire
        self.fmt = fmt
        self.slots = set(slots)

    def compute(self, cycle, time_ps):
        pass

    def commit(self, cycle, time_ps):
        slot, pos = divmod(cycle, self.fmt.flit_size)
        if slot in self.slots:
            self.wire.drive(Phit(word=(slot << 4) | pos, valid=True,
                                 eop=pos == self.fmt.flit_size - 1,
                                 word_index=pos))


class _SlotProbe:
    """Records (reader_slot, pos, word) for every valid sample.

    A wire sample at cycle ``c`` observes the value committed at ``c - 1``,
    so the slot/position attribution uses ``c - 1`` — the cycle the reader
    FSM actually drove the word (link occupancy time).
    """

    def __init__(self, wire, fmt):
        self.wire = wire
        self.fmt = fmt
        self.received: list[tuple[int, int, int]] = []

    def compute(self, cycle, time_ps):
        phit = self.wire.sample()
        if phit.valid:
            slot, pos = divmod(cycle - 1, self.fmt.flit_size)
            self.received.append((slot, pos, phit.word))

    def commit(self, cycle, time_ps):
        pass


def _run_stage(fmt, writer_phase, reader_phase, slots, n_slots=12):
    engine = Engine()
    wclk = ClockDomain("w", period_ps=PERIOD, phase_ps=writer_phase)
    rclk = ClockDomain("r", period_ps=PERIOD, phase_ps=reader_phase)
    stage = make_stage(engine, "stage", wclk, rclk, fmt)
    source = _SlotAlignedSource(stage.writer.inputs[0], fmt, slots)
    probe = _SlotProbe(stage.outputs[0], fmt)
    engine.add_component(wclk, source)
    engine.add_wire(wclk, stage.writer.inputs[0])
    engine.add_component(rclk, probe)
    engine.run_until(n_slots * fmt.flit_size * PERIOD + PERIOD)
    return stage, probe


class TestMesochronousStage:
    @pytest.mark.parametrize("writer_phase", [0, 250, 500, 750, 999])
    @pytest.mark.parametrize("reader_phase", [0, 250, 500, 750, 999])
    def test_exactly_one_slot_latency_for_all_skews(
            self, fmt, writer_phase, reader_phase):
        """Flit sent in slot s arrives in reader slot s+1, any skew."""
        sent_slots = [2, 3, 6]
        stage, probe = _run_stage(fmt, writer_phase, reader_phase,
                                  sent_slots)
        arrival_slots = sorted({slot for slot, _, _ in probe.received})
        assert arrival_slots == [s + 1 for s in sent_slots]

    @pytest.mark.parametrize("reader_phase", [0, 333, 666, 999])
    def test_words_consecutive_and_in_order(self, fmt, reader_phase):
        stage, probe = _run_stage(fmt, 0, reader_phase, [4])
        assert [(pos, word & 0xF) for _, pos, word in probe.received] == \
            [(0, 0), (1, 1), (2, 2)]

    @pytest.mark.parametrize("writer_phase", [0, 400, 800, 999])
    @pytest.mark.parametrize("reader_phase", [0, 400, 800, 999])
    def test_fifo_never_exceeds_four_words(self, fmt, writer_phase,
                                           reader_phase):
        """Back-to-back flits keep the 4-word FIFO within capacity."""
        stage, probe = _run_stage(fmt, writer_phase, reader_phase,
                                  list(range(1, 10)))
        assert stage.fifo.max_occupancy <= 4
        assert len(probe.received) == 9 * fmt.flit_size

    def test_back_to_back_flits_preserved(self, fmt):
        stage, probe = _run_stage(fmt, 600, 100, [1, 2, 3])
        slots = [slot for slot, pos, _ in probe.received if pos == 0]
        assert slots == [2, 3, 4]

    def test_plesiochronous_clocks_rejected(self, fmt):
        wclk = ClockDomain("w", period_ps=2000)
        rclk = ClockDomain("r", period_ps=2001)
        with pytest.raises(ConfigurationError):
            MesochronousLinkStage("s", wclk, rclk, fmt)

    def test_fifo_must_hold_a_flit(self, fmt):
        wclk = ClockDomain("w", period_ps=2000)
        rclk = ClockDomain("r", period_ps=2000)
        with pytest.raises(ConfigurationError):
            MesochronousLinkStage("s", wclk, rclk, fmt, fifo_words=2)

    def test_skew_reporting(self, fmt):
        wclk = ClockDomain("w", period_ps=2000, phase_ps=100)
        rclk = ClockDomain("r", period_ps=2000, phase_ps=700)
        stage = MesochronousLinkStage("s", wclk, rclk, fmt)
        assert stage.skew_ps() == 600
