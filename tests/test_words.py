"""Unit tests for word formats and header encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import HeaderFormatError
from repro.core.words import (WordFormat, decode_header, decode_next_port,
                              encode_header, encode_path, header_credits,
                              header_queue, shift_path)


class TestWordFormat:
    def test_default_geometry_matches_paper(self):
        fmt = WordFormat()
        assert fmt.data_width == 32
        assert fmt.flit_size == 3
        assert fmt.payload_words_per_flit == 2
        assert fmt.payload_bytes_per_flit == 8
        assert fmt.bytes_per_word == 4

    def test_max_hops_from_field_widths(self):
        fmt = WordFormat(data_width=32, port_bits=3, queue_bits=4,
                         credit_bits=5)
        assert fmt.path_bits == 23
        assert fmt.max_hops == 7

    def test_wider_words_encode_longer_paths(self):
        fmt = WordFormat(data_width=64)
        assert fmt.max_hops == (64 - 4 - 5) // 3

    def test_max_port_and_queue(self):
        fmt = WordFormat()
        assert fmt.max_port == 7
        assert fmt.max_queue == 15
        assert fmt.max_credits == 31

    def test_rejects_tiny_words(self):
        with pytest.raises(HeaderFormatError):
            WordFormat(data_width=4)

    def test_rejects_header_without_path_room(self):
        with pytest.raises(HeaderFormatError):
            WordFormat(data_width=8, queue_bits=4, credit_bits=4)

    def test_rejects_single_word_flits(self):
        with pytest.raises(HeaderFormatError):
            WordFormat(flit_size=1)

    def test_word_mask(self):
        assert WordFormat(data_width=16).word_mask == 0xFFFF


class TestPathEncoding:
    def test_first_hop_in_low_bits(self, fmt):
        path = encode_path([3, 5, 1], fmt)
        assert decode_next_port(path, fmt) == 3

    def test_shift_consumes_one_hop(self, fmt):
        header = encode_header([3, 5, 1], queue=0, credits=0, fmt=fmt)
        header = shift_path(header, fmt)
        assert decode_next_port(header, fmt) == 5
        header = shift_path(header, fmt)
        assert decode_next_port(header, fmt) == 1

    def test_shift_preserves_queue_and_credits(self, fmt):
        header = encode_header([3, 5], queue=9, credits=17, fmt=fmt)
        shifted = shift_path(header, fmt)
        assert header_queue(shifted, fmt) == 9
        assert header_credits(shifted, fmt) == 17

    def test_path_too_long_rejected(self, fmt):
        with pytest.raises(HeaderFormatError):
            encode_path([1] * (fmt.max_hops + 1), fmt)

    def test_port_too_large_rejected(self, fmt):
        with pytest.raises(HeaderFormatError):
            encode_path([fmt.max_port + 1], fmt)

    def test_empty_path_is_zero(self, fmt):
        assert encode_path([], fmt) == 0


class TestHeaderRoundTrip:
    def test_decode_header_fields(self, fmt):
        header = encode_header([2, 4], queue=7, credits=12, fmt=fmt)
        path, queue, credits = decode_header(header, fmt)
        assert decode_next_port(path, fmt) == 2
        assert queue == 7
        assert credits == 12

    def test_queue_out_of_range(self, fmt):
        with pytest.raises(HeaderFormatError):
            encode_header([], queue=fmt.max_queue + 1, credits=0, fmt=fmt)

    def test_credits_out_of_range(self, fmt):
        with pytest.raises(HeaderFormatError):
            encode_header([], queue=0, credits=fmt.max_credits + 1, fmt=fmt)

    def test_header_fits_in_word(self, fmt):
        header = encode_header([7] * fmt.max_hops, queue=fmt.max_queue,
                               credits=fmt.max_credits, fmt=fmt)
        assert header <= fmt.word_mask

    @given(st.data())
    def test_roundtrip_property(self, data):
        fmt = WordFormat()
        ports = data.draw(st.lists(
            st.integers(0, fmt.max_port), max_size=fmt.max_hops))
        queue = data.draw(st.integers(0, fmt.max_queue))
        credits = data.draw(st.integers(0, fmt.max_credits))
        header = encode_header(ports, queue, credits, fmt)
        assert header_queue(header, fmt) == queue
        assert header_credits(header, fmt) == credits
        # Walking the header recovers the full port sequence.
        recovered = []
        word = header
        for _ in ports:
            recovered.append(decode_next_port(word, fmt))
            word = shift_path(word, fmt)
        assert recovered == list(ports)

    @given(st.integers(2, 7), st.integers(0, 200))
    def test_hop_consumption_is_shift_invariant(self, hops, seed):
        import random
        fmt = WordFormat()
        rng = random.Random(seed)
        ports = [rng.randint(0, fmt.max_port) for _ in range(hops)]
        header = encode_header(ports, 1, 2, fmt)
        for expected in ports:
            assert decode_next_port(header, fmt) == expected
            header = shift_path(header, fmt)
        # Path field fully consumed.
        assert decode_next_port(header, fmt) == 0
