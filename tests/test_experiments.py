"""Tests for the experiment modules: row structure and result shapes."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (fifo_depth_rows, ordering_rows,
                                         pipeline_stage_rows,
                                         table_size_rows)
from repro.experiments.area_comparison import (fifo_rows,
                                               headline_ratio_rows,
                                               mesochronous_rows,
                                               related_work_rows,
                                               throughput_rows)
from repro.experiments.figures import (FIG5_TARGETS_MHZ, figure5_rows,
                                       figure6a_rows, figure6b_rows)
from repro.experiments.report import format_table, format_value


class TestReportFormatting:
    def test_format_value_types(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(12345) == "12,345"
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.14"
        assert format_value(1234.5) == "1,234"
        assert format_value("text") == "text"

    def test_format_table_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        table = format_table(rows, title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        table = format_table(rows, columns=["c", "a"])
        header = table.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header


class TestFigureRows:
    def test_figure5_covers_targets(self):
        rows = figure5_rows()
        assert [row["target_mhz"] for row in rows] == \
            [float(m) for m in FIG5_TARGETS_MHZ]
        for row in rows:
            assert row["area_um2"] > 0
            assert row["achieved_mhz"] <= row["target_mhz"] + 1e-9

    def test_figure5_area_monotone(self):
        areas = [row["area_um2"] for row in figure5_rows()]
        assert areas == sorted(areas)

    def test_figure6a_shape(self):
        rows = figure6a_rows()
        assert [row["arity"] for row in rows] == [2, 3, 4, 5, 6, 7]
        areas = [row["area_um2"] for row in rows]
        freqs = [row["max_frequency_mhz"] for row in rows]
        assert areas == sorted(areas)
        assert freqs == sorted(freqs, reverse=True)

    def test_figure6b_shape(self):
        rows = figure6b_rows()
        areas = [row["area_um2"] for row in rows]
        assert areas == sorted(areas)
        # Linear growth: each 32-bit step adds a near-constant increment.
        deltas = [b - a for a, b in zip(areas, areas[1:])]
        assert max(deltas) - min(deltas) < 0.1 * max(deltas)


class TestAreaComparisonRows:
    def test_fifo_rows(self):
        rows = fifo_rows()
        assert len(rows) == 2
        custom = rows[0]["area_um2"]
        standard = rows[1]["area_um2"]
        assert custom < standard

    def test_mesochronous_rows(self):
        rows = mesochronous_rows()
        assert rows[-1]["area_mm2"] == pytest.approx(0.032, rel=0.15)

    def test_related_work_rows_have_sources(self):
        for row in related_work_rows():
            assert row["source"]

    def test_headline_rows(self):
        rows = headline_ratio_rows()
        assert {row["metric"] for row in rows} == \
            {"area (mm^2)", "frequency (MHz)"}

    def test_throughput_rows(self):
        rows = throughput_rows()
        assert any(row["router"] == "arity-6, 64-bit" for row in rows)
        for row in rows:
            assert row["aggregate_gb_s"] > 0


class TestAblationRows:
    def test_table_size_rows(self):
        rows = table_size_rows()
        assert [row["table_size"] for row in rows] == \
            [4, 8, 16, 32, 64, 128]

    def test_fifo_depth_rows(self):
        rows = fifo_depth_rows()
        verdicts = {row["fifo_words"]: row["verdict"] for row in rows}
        assert verdicts[4] == "minimum sufficient"

    def test_ordering_rows(self):
        rows = ordering_rows()
        assert {row["order"] for row in rows} == \
            {"tightness", "throughput", "input"}

    def test_pipeline_stage_rows_arithmetic(self):
        rows = pipeline_stage_rows()
        slots = [row["traversal_slots"] for row in rows]
        # 3-router path: base 4 slots, +2 per added stage level
        # (two router-router links).
        assert slots == [4, 6, 8, 10]
