"""The telemetry analysis tier: conformance watchdog, rollups, sentinel.

Pins the monitor's three contracts:

* classification — the ``within_bounds`` / ``tight`` / ``violated``
  verdict algebra, including the epsilon band that keeps an *attained*
  bound (observed == analytical worst case, the TDM ideal) out of
  ``violated``;
* byte-determinism — conformance reports, fabric rollups and sentinel
  verdicts serialise identically across repeated runs, and arming the
  monitor never changes a flow's canonical report;
* the regression sentinel — ``bench_check`` passes intact
  trajectories, fails a synthetically regressed one, and treats
  single-entry files as insufficient rather than wrong.
"""

from __future__ import annotations

import json

import pytest

from repro.simulation.backend import FlitLevelBackend, SimRequest
from repro.simulation.traffic import ConstantBitRate
from repro.telemetry.monitor import (BenchCheckReport, ConformanceReport,
                                     FabricRollup, MonitorSpec,
                                     bench_check, campaign_conformance,
                                     conformance_from_result,
                                     quote_conformance)


def _cbr_traffic(config):
    return {
        name: ConstantBitRate.from_rate(
            ca.spec.throughput_bytes_per_s, config.frequency_hz,
            config.fmt)
        for name, ca in config.allocation.channels.items()}


def _gs_result(config, n_slots=800):
    return FlitLevelBackend(config).run(
        SimRequest(n_slots=n_slots, traffic=_cbr_traffic(config)))


class TestClassification:

    def test_verdict_bands(self):
        spec = MonitorSpec(slack_fraction=0.2)
        assert spec.classify(50.0, 100.0) == "within_bounds"
        assert spec.classify(80.0, 100.0) == "tight"
        assert spec.classify(100.0, 100.0) == "tight"
        assert spec.classify(101.0, 100.0) == "violated"

    def test_attained_bound_is_tight_not_violated(self):
        # The paper's bounds are exact: burst traffic drives observed
        # worst-case latency onto the analytical bound, with float fuzz
        # on either side.  The eps band absorbs it.
        spec = MonitorSpec()
        bound = 216.0
        assert spec.classify(bound * (1 - 1e-15), bound) == "tight"
        assert spec.classify(bound * (1 + 1e-15), bound) == "tight"

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MonitorSpec(slack_fraction=1.0)
        with pytest.raises(ValueError):
            MonitorSpec(top_k=0)

    def test_worst_channels_orders_by_headroom(self):
        from repro.telemetry.monitor import ChannelConformance

        def entry(name, worst):
            return ChannelConformance(
                channel=name, kind="trace", verdict="within_bounds",
                latency_bound_ns=100.0, worst_latency_ns=worst,
                n_messages=1)
        report = ConformanceReport(source="test", scenario="s", channels=(
            entry("a", 90.0), entry("b", 50.0), entry("c", 99.0),
            ChannelConformance(channel="d", kind="trace",
                               verdict="within_bounds")))
        worst = [c.channel for c in report.worst_channels(4)]
        assert worst[0] == "c"  # least headroom first
        assert worst[-1] == "d"  # unmeasured entries sort last


class TestSimulationConformance:

    def test_mesh_gs_within_bounds_and_deterministic(self, mesh_config):
        result = _gs_result(mesh_config)
        report = conformance_from_result(mesh_config, result)
        assert isinstance(report, ConformanceReport)
        assert len(report.channels) == 3
        assert report.n_violated == 0
        assert report.ok
        # CBR at the required rate leaves slack: latency stays under
        # the worst-case bound and throughput under the quota.
        rerun = conformance_from_result(mesh_config,
                                        _gs_result(mesh_config))
        assert report.to_json() == rerun.to_json()

    def test_section7_gs_zero_violated_byte_deterministic(self):
        # The acceptance bar: the Section VII use case reports zero
        # violated channels on the GS backend, twice-run identical.
        from repro.experiments.section7 import section7_setup
        from repro.usecase.runner import run_gs
        _, config = section7_setup()
        first = conformance_from_result(
            config, run_gs(config, n_slots=1200).result)
        second = conformance_from_result(
            config, run_gs(config, n_slots=1200).result)
        assert len(first.channels) == 200
        assert first.n_violated == 0
        assert first.to_json() == second.to_json()
        # Burst traffic attains the worst case: every channel lands
        # tight-or-better, none violated.
        counts = first.counts
        assert counts["within_bounds"] + counts["tight"] == 200

    def test_invalid_verdict_rejected(self):
        from repro.telemetry.monitor import ChannelConformance
        with pytest.raises(ValueError):
            ChannelConformance(channel="c0", kind="trace",
                               verdict="fine")


class TestServiceConformance:

    def test_monitored_service_reports_and_stays_byte_identical(self):
        from repro.service.demo import run_demo
        plain, _ = run_demo(n_events=200)
        monitored, identical = run_demo(n_events=200,
                                        monitor=MonitorSpec())
        assert identical
        assert plain.to_json() == monitored.to_json()
        conformance = monitored.conformance
        assert conformance.n_violated == 0
        assert all(c.kind == "quote" for c in conformance.channels)

    def test_unarmed_service_refuses_conformance_report(self):
        from repro.core.exceptions import ConfigurationError
        from repro.service.controller import SessionService
        from repro.topology.builders import mesh
        service = SessionService(mesh(2, 2, nis_per_router=1))
        with pytest.raises(ConfigurationError):
            service.conformance_report()

    def test_quote_violation_detected(self):
        report = quote_conformance(
            [("s0", "voice", 1200.0, 1000.0, 64e6, 64e6),
             ("s1", "bulk", 100.0, None, 16e6, 32e6)])
        verdicts = {c.channel: c.verdict for c in report.channels}
        assert verdicts == {"s0": "violated", "s1": "violated"}
        assert not report.ok


class TestTimelineConformance:

    def test_faults_demo_survivors_zero_violated(self):
        from repro.faults.demo import run_faults_demo
        record, plain_json, identical = run_faults_demo(
            n_events=100, n_slots=1200, n_faults=4,
            monitor=MonitorSpec())
        assert identical
        conformance = record["_conformance"]
        assert conformance.n_violated == 0
        assert conformance.source == "timeline"
        # The stashed artifact never entered the canonical record.
        assert "_conformance" not in json.loads(plain_json)

    def test_monitor_off_report_bytes_unchanged(self):
        from repro.faults.demo import run_faults_demo
        _, on_json, _ = run_faults_demo(
            n_events=100, n_slots=1200, n_faults=4,
            monitor=MonitorSpec())
        _, off_json, _ = run_faults_demo(
            n_events=100, n_slots=1200, n_faults=4)
        assert on_json == off_json


class TestCampaignConformance:

    def test_statuses_fold_to_verdicts(self):
        records = [
            {"run": "r0", "status": "ok", "result": {}},
            {"run": "r1", "status": "crashed",
             "error": "boom", "result": {}},
            {"run": "r2", "status": "ok",
             "result": {"composability": {"composable": False}}},
        ]
        report = campaign_conformance(records)
        verdicts = {c.channel: c.verdict for c in report.channels}
        assert verdicts["r0"] == "within_bounds"
        assert verdicts["r1"] == "violated"
        assert verdicts["r2"] == "violated"
        assert report.n_violated == 2


class TestFabricRollup:

    def test_from_allocation_heatmap(self, mesh_config):
        rollup = FabricRollup.from_allocation(mesh_config.allocation)
        assert rollup.n_channels == 3
        assert rollup.table_size == mesh_config.allocation.table_size
        hot = rollup.hotspots(2)
        assert len(hot) == 2
        # Hotspots are sorted by occupancy, then name.
        assert hot[0][1] >= hot[1][1]
        assert rollup.to_json() == FabricRollup.from_allocation(
            mesh_config.allocation).to_json()

    def test_counter_tracks_reach_chrome_trace(self, mesh_config):
        from repro.telemetry import Telemetry
        tel = Telemetry("rollup")
        FabricRollup.from_allocation(
            mesh_config.allocation).emit_counter_tracks(tel)
        trace = tel.chrome_trace()
        counters = [e for e in trace["traceEvents"]
                    if e.get("ph") == "C"]
        assert counters
        assert all(e["cat"] == "fabric" for e in counters)


class TestBenchCheck:

    def _write(self, tmp_path, name, rates):
        entries = [{"benchmark": name, "wall_s": 1.0, "ops_per_s": rate,
                    "speedup": None, "git_rev": "test",
                    "timestamp": "2026-01-01T00:00:00Z"}
                   for rate in rates]
        (tmp_path / f"BENCH_{name}.json").write_text(
            json.dumps(entries) + "\n")

    def test_intact_trajectory_passes(self, tmp_path):
        self._write(tmp_path, "steady", [100.0, 104.0, 98.0])
        report = bench_check(tmp_path, tolerance=0.15)
        assert report.ok
        assert report.verdicts[0].status == "ok"

    def test_synthetic_regression_fails(self, tmp_path):
        self._write(tmp_path, "regressed", [100.0, 104.0, 50.0])
        report = bench_check(tmp_path, tolerance=0.15)
        assert not report.ok
        verdict = report.verdicts[0]
        assert verdict.status == "regressed"
        assert verdict.ratio < 0.85
        assert "regressed" in report.summary()

    def test_single_entry_is_insufficient_not_failed(self, tmp_path):
        self._write(tmp_path, "fresh", [100.0])
        report = bench_check(tmp_path, tolerance=0.15)
        assert report.ok
        assert report.verdicts[0].status == "insufficient"

    def test_committed_records_pass_the_ci_gate(self):
        # The exact invocation CI runs must stay green on the committed
        # trajectories (single-entry files count as insufficient).
        report = bench_check("benchmarks/records", tolerance=0.15)
        assert report.ok, report.summary()
        assert len(report.verdicts) >= 4

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main
        self._write(tmp_path, "regressed", [100.0, 104.0, 50.0])
        assert main(["bench-check", "--records", str(tmp_path)]) == 1
        self._write(tmp_path, "regressed", [100.0, 104.0, 99.0])
        assert main(["bench-check", "--records", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench-check" in out

    def test_report_roundtrip(self, tmp_path):
        self._write(tmp_path, "steady", [100.0, 104.0, 98.0])
        report = bench_check(tmp_path, tolerance=0.15)
        record = json.loads(report.to_json())
        assert record["ok"] is True
        assert record["n_benchmarks"] == 1
        assert isinstance(report, BenchCheckReport)
