"""End-to-end credit flow control on the detailed word-level model.

Builds a connection (forward data channel + reverse channel) with
end-to-end credits enabled in the detailed simulator and verifies the
paper's Section III/IV-A claims:

* a conforming producer never observes credit stalls once the loop is
  primed (the buffer sizing formulas of :mod:`repro.core.buffers` hold);
* an oversubscribing producer is throttled by back-pressure to exactly
  the reserved rate — and only slows itself down;
* credits piggybacked on reverse-channel headers keep the counters
  balanced (conservation).
"""

from __future__ import annotations

import pytest

from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.simulation.cyclesim import DetailedNetwork
from repro.simulation.traffic import ConstantBitRate, Saturating
from repro.topology.builders import mesh
from repro.topology.mapping import Mapping


@pytest.fixture
def fc_setup():
    """A forward/reverse channel pair across a 2x1 mesh."""
    topo = mesh(2, 1, nis_per_router=1)
    forward = ChannelSpec("data", "producer", "consumer", 150 * MB,
                          application="app")
    reverse = ChannelSpec("ack", "consumer", "producer", 30 * MB,
                          application="app")
    use_case = UseCase("fc", (Application("app", (forward, reverse)),))
    mapping = Mapping({"producer": "ni0_0_0", "consumer": "ni1_0_0"})
    config = configure(topo, use_case, table_size=8, frequency_hz=500e6,
                       mapping=mapping)
    return config


def _run(config, traffic, *, rx_capacity=64, horizon=600):
    network = DetailedNetwork(
        config, clocking="synchronous", traffic=traffic,
        horizon_slots=horizon,
        flow_control_pairs={"data": "ack"},
        rx_capacity_words=rx_capacity)
    result = network.run()
    return network, result


class TestEndToEndFlowControl:
    def test_conforming_producer_never_stalls(self, fc_setup):
        config = fc_setup
        traffic = {
            "data": ConstantBitRate.from_rate(150 * MB, 500e6,
                                              config.fmt),
            "ack": ConstantBitRate.from_rate(30 * MB, 500e6, config.fmt),
        }
        network, result = _run(config, traffic, rx_capacity=64)
        producer = network.nis["ni0_0_0"]
        assert producer.stalled_slots == 0
        assert result.stats.channel("data").deliveries

    def test_oversubscription_throttled_to_reserved_rate(self, fc_setup):
        config = fc_setup
        traffic = {
            "data": Saturating(config.fmt.payload_words_per_flit,
                               config.fmt.flit_size),
            "ack": ConstantBitRate.from_rate(30 * MB, 500e6, config.fmt),
        }
        network, result = _run(config, traffic, rx_capacity=2,
                               horizon=800)
        producer = network.nis["ni0_0_0"]
        # The tiny remote buffer forces stalls...
        assert producer.stalled_slots > 0
        # ...but throughput converges to what the credits allow, and the
        # network itself never drops or corrupts anything.
        deliveries = result.stats.channel("data").deliveries
        assert deliveries
        ids = [d.message_id for d in deliveries]
        assert ids == sorted(ids)

    def test_reverse_channel_unaffected_by_forward_stalls(self, fc_setup):
        """The ack channel keeps its own guaranteed service."""
        config = fc_setup
        base_traffic = {
            "ack": ConstantBitRate.from_rate(30 * MB, 500e6, config.fmt),
        }
        saturated = dict(base_traffic)
        saturated["data"] = Saturating(config.fmt.payload_words_per_flit,
                                       config.fmt.flit_size)
        _, calm = _run(config, base_traffic, rx_capacity=8)
        _, stormy = _run(config, saturated, rx_capacity=8)
        calm_acks = [(d.message_id, d.delivered_cycle)
                     for d in calm.stats.channel("ack").deliveries]
        stormy_acks = [(d.message_id, d.delivered_cycle)
                       for d in stormy.stats.channel("ack").deliveries]
        n = min(len(calm_acks), len(stormy_acks))
        assert n > 5
        assert calm_acks[:n] == stormy_acks[:n]

    def test_credit_conservation(self, fc_setup):
        """Credits spent equal payload words sent (none invented/lost)."""
        config = fc_setup
        traffic = {
            "data": ConstantBitRate.from_rate(150 * MB, 500e6,
                                              config.fmt),
            "ack": ConstantBitRate.from_rate(30 * MB, 500e6, config.fmt),
        }
        network, result = _run(config, traffic, rx_capacity=64)
        producer = network.nis["ni0_0_0"]
        consumer = network.nis["ni1_0_0"]
        credits_now = producer.credits_of("data")
        sent_words = sum(
            d.payload_bytes for d in
            result.stats.channel("data").deliveries) // \
            config.fmt.bytes_per_word
        # initial = current + in-flight-or-unreturned; the unreturned
        # amount is bounded by what the consumer still holds pending
        # plus one header's worth in flight.
        pending = sum(rx.pending_credits
                      for rx in consumer._rx.values())
        assert credits_now is not None
        assert credits_now <= 64
        assert 64 - credits_now <= pending + \
            config.fmt.max_credits + \
            producer.pending_words("data") + \
            config.fmt.payload_words_per_flit * 4


class TestCli:
    def test_cli_fig5(self, capsys):
        from repro.__main__ import main
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "area_um2" in out

    def test_cli_rejects_unknown(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["nonsense"])
