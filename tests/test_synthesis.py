"""Tests for the calibrated synthesis models.

Anchors come from the paper; shape properties (monotonicity, linearity)
are checked with hypothesis so they hold over the whole parameter space,
not just the figure's sample points.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat
from repro.synthesis.area_model import (RouterAreaModel,
                                        aethereal_gsbe_router_area_um2,
                                        link_stage_area_um2,
                                        mesochronous_router_area_um2,
                                        ni_area_um2)
from repro.synthesis.comparison import (aelite_vs_aethereal,
                                        related_work_table,
                                        throughput_per_area)
from repro.synthesis.gates import (GateCounts, comparator_gates,
                                   counter_gates, fifo_area_um2,
                                   mux_tree_gates, one_hot_encoder_gates)
from repro.synthesis.technology import (TECH_65, TECH_90LP, TECH_130,
                                        scale_area_um2,
                                        scale_frequency_hz)
from repro.synthesis.timing_model import (MAX_EFFORT_FACTOR,
                                          critical_path_ps, effort_factor,
                                          frequency_sweep,
                                          max_frequency_hz,
                                          router_area_at_frequency_um2)


class TestGates:
    def test_mux_tree(self):
        assert mux_tree_gates(5, 34) == 4 * 34 * 1.75

    def test_mux_tree_single_input_free(self):
        assert mux_tree_gates(1, 32) == 0

    def test_gate_counts_accumulate(self):
        counts = GateCounts()
        counts.add_registers(10).add_logic(100)
        counts.merge(GateCounts(flipflops=5, nand2=50))
        area = counts.area_um2(TECH_90LP)
        assert area == pytest.approx(15 * 14.0 + 150 * 3.1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            GateCounts().add_registers(-1)
        with pytest.raises(ConfigurationError):
            counter_gates(-1)
        with pytest.raises(ConfigurationError):
            comparator_gates(-1)
        with pytest.raises(ConfigurationError):
            one_hot_encoder_gates(0)


class TestPaperAnchors:
    """Every number the paper states, reproduced within tolerance."""

    def test_arity5_router_area_at_moderate_frequency(self, fmt):
        # "the router occupies less than 0.015 mm^2 for frequencies up
        # to 650 MHz"
        area = router_area_at_frequency_um2(5, 650e6, fmt)
        assert area < 15_100
        assert 13_000 < area  # and is in the 14 k region, not tiny

    def test_arity5_fmax_saturation_region(self, fmt):
        # Figure 5 saturates around 875 MHz.
        fmax = max_frequency_hz(5, fmt)
        assert 850e6 <= fmax <= 900e6

    def test_custom_fifo_area(self):
        # "the area of a 4-word FIFO is in the order of 1500 um^2 ...
        # or roughly 3300 um^2 with the non-custom FIFOs"
        width = WordFormat().data_width + 2
        assert fifo_area_um2(4, width, TECH_90LP, custom=True) == \
            pytest.approx(1500, rel=0.1)
        assert fifo_area_um2(4, width, TECH_90LP, custom=False) == \
            pytest.approx(3300, rel=0.1)

    def test_mesochronous_router_area(self, fmt):
        # "the complete router with links is in the order of 0.032 mm^2"
        area = mesochronous_router_area_um2(5, 5, fmt)
        assert area / 1e6 == pytest.approx(0.032, rel=0.1)

    def test_aethereal_gsbe_anchor(self, fmt):
        # "[the GS+BE router] occupies 0.13 mm^2 ... in a 130 nm CMOS"
        area = aethereal_gsbe_router_area_um2(5, fmt, tech=TECH_130)
        assert area / 1e6 == pytest.approx(0.13, rel=0.08)

    def test_headline_ratios(self, fmt):
        # "roughly 5x smaller area and 1.5x the frequency"
        comparison = aelite_vs_aethereal(fmt)
        assert 3.5 <= comparison.area_ratio <= 6.0
        assert 1.3 <= comparison.frequency_ratio <= 1.7

    def test_arity6_64bit_throughput(self):
        # "an arity-6 aelite router offers 64 Gbyte/s at 0.03 mm^2 for
        # a 64-bit data width"
        gbytes, mm2 = throughput_per_area(6, WordFormat(data_width=64))
        assert gbytes >= 64
        assert mm2 <= 0.040


class TestShapeProperties:
    @given(st.integers(2, 12))
    def test_area_monotone_in_arity(self, arity):
        fmt = WordFormat()
        smaller = RouterAreaModel(arity, arity, fmt).base_area_um2()
        larger = RouterAreaModel(arity + 1, arity + 1, fmt).base_area_um2()
        assert larger > smaller

    @given(st.sampled_from([16, 32, 64, 96, 128, 192, 256]))
    def test_area_monotone_in_width(self, width):
        a = RouterAreaModel(5, 5, WordFormat(data_width=width))
        b = RouterAreaModel(5, 5, WordFormat(data_width=width * 2))
        assert b.base_area_um2() > a.base_area_um2()

    @given(st.integers(2, 12))
    def test_fmax_decreases_with_arity(self, arity):
        fmt = WordFormat()
        assert max_frequency_hz(arity + 1, fmt) < \
            max_frequency_hz(arity, fmt)

    @given(st.floats(0.05, 1.0), st.floats(0.05, 1.0))
    def test_effort_monotone_and_bounded(self, u1, u2):
        factor1 = effort_factor(u1 * 1e9, 1e9)
        factor2 = effort_factor(u2 * 1e9, 1e9)
        assert 1.0 <= factor1 <= MAX_EFFORT_FACTOR
        if u1 < u2:
            assert factor1 <= factor2

    def test_effort_clamps_beyond_fmax(self):
        assert effort_factor(2e9, 1e9) == MAX_EFFORT_FACTOR

    def test_sweep_achieved_never_exceeds_fmax(self, fmt):
        fmax = max_frequency_hz(5, fmt)
        points = frequency_sweep(5, [fmax * 0.5, fmax, fmax * 1.5], fmt)
        assert points[-1].achieved_mhz == pytest.approx(fmax / 1e6)

    def test_critical_path_positive(self, fmt):
        assert critical_path_ps(2, fmt) > 0


class TestTechnologyScaling:
    def test_area_scaling_quadratic(self):
        assert scale_area_um2(100.0, TECH_130, TECH_90LP) == \
            pytest.approx(100 * (90 / 130) ** 2)

    def test_frequency_scaling_sublinear(self):
        scaled = scale_frequency_hz(500e6, TECH_130, TECH_90LP)
        assert 500e6 < scaled < 500e6 * (130 / 90)

    def test_scaling_roundtrip(self):
        there = scale_area_um2(123.0, TECH_90LP, TECH_65)
        back = scale_area_um2(there, TECH_65, TECH_90LP)
        assert back == pytest.approx(123.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            scale_area_um2(-1.0, TECH_90LP, TECH_65)
        with pytest.raises(ConfigurationError):
            scale_frequency_hz(0.0, TECH_90LP, TECH_65)


class TestOtherModels:
    def test_ni_area_grows_with_channels(self):
        small = ni_area_um2(2, 2, 16)
        large = ni_area_um2(8, 8, 16)
        assert large > small

    def test_link_stage_composition(self, fmt):
        stage = link_stage_area_um2(fmt)
        fifo = fifo_area_um2(4, fmt.data_width + 2, TECH_90LP)
        assert stage > fifo  # FSM adds area on top of the FIFO

    def test_related_work_table_complete(self):
        table = related_work_table()
        designs = {row.design for row in table}
        assert len(table) == 5
        assert any("aelite" in d for d in designs)
        assert any("[4]" in d for d in designs)
        assert any("[7]" in d for d in designs)

    def test_gsbe_router_larger_than_aelite(self, fmt):
        aelite = RouterAreaModel(5, 5, fmt).base_area_um2(TECH_90LP)
        gsbe_90 = scale_area_um2(
            aethereal_gsbe_router_area_um2(5, fmt, tech=TECH_130),
            TECH_130, TECH_90LP)
        assert gsbe_90 > 3 * aelite
