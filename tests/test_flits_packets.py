"""Tests for flit/packet datatypes and their framing invariants."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.flits import Flit, FlitKind, FlitMeta, Packet
from repro.core.words import WordFormat


class TestFlit:
    def test_data_flit_padding(self, fmt):
        flit = Flit.data([0xA, 0xB], fmt, eop=True, has_header=True)
        assert flit.words == (0xA, 0xB, 0x0)
        assert flit.kind is FlitKind.DATA

    def test_oversized_flit_rejected(self, fmt):
        with pytest.raises(ConfigurationError):
            Flit.data([1, 2, 3, 4], fmt, eop=True, has_header=True)

    def test_empty_token(self, fmt):
        token = Flit.empty(fmt)
        assert token.is_empty
        assert token.eop
        assert len(token.words) == fmt.flit_size

    def test_header_word_accessor(self, fmt):
        flit = Flit.data([0x123, 1], fmt, eop=True, has_header=True)
        assert flit.header_word == 0x123

    def test_with_header_word(self, fmt):
        flit = Flit.data([0x123, 1], fmt, eop=False, has_header=True)
        shifted = flit.with_header_word(0x456)
        assert shifted.header_word == 0x456
        assert shifted.words[1:] == flit.words[1:]
        assert flit.header_word == 0x123  # original untouched

    def test_with_meta(self, fmt):
        flit = Flit.data([1], fmt, eop=True, has_header=True)
        meta = FlitMeta(channel="c", sequence=3)
        tagged = flit.with_meta(meta)
        assert tagged.meta.channel == "c"
        assert flit.meta is None

    def test_flit_is_immutable(self, fmt):
        flit = Flit.data([1], fmt, eop=True, has_header=True)
        with pytest.raises(AttributeError):
            flit.eop = False  # type: ignore[misc]


class TestPacket:
    def _flit(self, fmt, *, header=False, eop=False):
        return Flit.data([1, 2], fmt, eop=eop, has_header=header)

    def test_valid_packet(self, fmt):
        packet = Packet((self._flit(fmt, header=True),
                         self._flit(fmt, eop=True)))
        assert len(packet) == 2

    def test_must_start_with_header(self, fmt):
        with pytest.raises(ConfigurationError):
            Packet((self._flit(fmt), self._flit(fmt, eop=True)))

    def test_must_end_with_eop(self, fmt):
        with pytest.raises(ConfigurationError):
            Packet((self._flit(fmt, header=True), self._flit(fmt)))

    def test_no_mid_packet_header(self, fmt):
        with pytest.raises(ConfigurationError):
            Packet((self._flit(fmt, header=True),
                    self._flit(fmt, header=True, eop=True)))

    def test_no_mid_packet_eop(self, fmt):
        with pytest.raises(ConfigurationError):
            Packet((self._flit(fmt, header=True, eop=True),
                    self._flit(fmt, eop=True)))

    def test_empty_packet_rejected(self, fmt):
        with pytest.raises(ConfigurationError):
            Packet(())

    def test_payload_bytes_sums_metadata(self, fmt):
        flit_a = Flit.data([1, 2], fmt, eop=False, has_header=True,
                           meta=FlitMeta(payload_bytes=4))
        flit_b = Flit.data([3, 4, 5], fmt, eop=True, has_header=False,
                           meta=FlitMeta(payload_bytes=12))
        assert Packet((flit_a, flit_b)).payload_bytes == 16

    def test_header_word_of_packet(self, fmt):
        packet = Packet((Flit.data([0x77, 0], fmt, eop=True,
                                   has_header=True),))
        assert packet.header_word == 0x77
