"""Property-based tests of the hardware models.

Hypothesis drives randomised scripts through the router and the
mesochronous stage, asserting the architectural contracts for *every*
input, not just the hand-picked cases of the unit tests:

* the router is a pure 3-cycle delay plus routing — every injected flit
  emerges exactly 3 cycles later on exactly the port its header names,
  with payload words untouched;
* the mesochronous stage is a pure one-slot delay for every legal skew;
* the flit-level simulator never violates an analytical bound on any
  randomly generated (feasible) workload and traffic pattern.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocking.clock import ClockDomain
from repro.core.analysis import analyse
from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import AllocationError
from repro.core.words import WordFormat, encode_header
from repro.router.synchronous import SynchronousRouter
from repro.simulation.engine import Engine
from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.signals import IDLE, Phit
from repro.simulation.traffic import BernoulliMessages, PeriodicBurst
from repro.topology.builders import mesh
from repro.topology.mapping import round_robin


class _ScriptDriver:
    def __init__(self, wire, script):
        self.wire = wire
        self.script = dict(script)

    def compute(self, cycle, time_ps):
        pass

    def commit(self, cycle, time_ps):
        self.wire.drive(self.script.get(cycle, IDLE))


class _Probe:
    def __init__(self, wire):
        self.wire = wire
        self.samples = []

    def compute(self, cycle, time_ps):
        self.samples.append(self.wire.sample())

    def commit(self, cycle, time_ps):
        pass


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_router_is_exact_three_cycle_delay(seed):
    """Random flit schedules: output = input, delayed 3, routed."""
    rng = random.Random(seed)
    fmt = WordFormat()
    n_ports = rng.randint(2, 5)
    router = SynchronousRouter("r", n_ports, n_ports, fmt)
    # Build a random slot-aligned schedule on input 0: each flit picks a
    # random output port.
    script = {}
    expected = {}  # cycle -> (port, word)
    for slot in range(rng.randint(1, 6)):
        if rng.random() < 0.4:
            continue  # idle slot
        port = rng.randrange(n_ports)
        base = slot * fmt.flit_size
        header = encode_header([port], 0, 0, fmt)
        words = [header, rng.randrange(1 << 16), rng.randrange(1 << 16)]
        for pos in range(fmt.flit_size):
            script[base + pos] = Phit(
                word=words[pos], valid=True,
                eop=pos == fmt.flit_size - 1, word_index=pos)
            # Sampled by the probe 4 cycles after the driver's commit
            # (1 wire + 3 router stages).
            expected[base + pos + 4] = (port, words[pos])
    engine = Engine()
    clock = ClockDomain("c", period_ps=1000)
    probes = [_Probe(router.outputs[p]) for p in range(n_ports)]
    for probe in probes:
        engine.add_component(clock, probe)
    engine.add_component(clock, _ScriptDriver(router.inputs[0], script))
    engine.add_component(clock, router)
    for wire in router.inputs + router.outputs:
        engine.add_wire(clock, wire)
    horizon = (max(script) + 6 if script else 6)
    engine.run_until(horizon * 1000)
    for cycle, (port, word) in expected.items():
        if cycle >= horizon:
            continue
        phit = probes[port].samples[cycle]
        assert phit.valid, f"missing word at cycle {cycle}"
        # The header word is path-shifted; payload words are untouched.
        if cycle % fmt.flit_size != (min(expected) % fmt.flit_size):
            pass
    # Payload words (positions 1, 2 of each flit) must be bit-exact.
    for cycle, (port, word) in expected.items():
        if cycle >= horizon:
            continue
        pos = [c for c in expected if c <= cycle and
               expected[c][0] == port]
        phit = probes[port].samples[cycle]
        if phit.word_index > 0:
            assert phit.word == word
    # And nothing emerges on ports that were never addressed.
    addressed = {p for p, _ in expected.values()}
    for port in range(n_ports):
        if port not in addressed:
            assert not any(p.valid for p in probes[port].samples)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 100_000))
def test_flitsim_bounds_hold_for_random_traffic(seed):
    """Any feasible workload + any traffic: service stays within bounds.

    The bound covers *service* latency (head-of-queue to delivery) for
    any arrival process — including oversubscribing ones, where raw
    end-to-end latency legitimately grows without bound.
    """
    rng = random.Random(seed)
    topo = mesh(2, 2, nis_per_router=1)
    ips = [f"ip{i}" for i in range(8)]
    mapping = round_robin(ips, topo)
    channels = []
    for i in range(rng.randint(2, 6)):
        src, dst = rng.sample(ips, 2)
        while mapping.ni_of(src) == mapping.ni_of(dst):
            src, dst = rng.sample(ips, 2)
        channels.append(ChannelSpec(
            f"c{i}", src, dst, rng.uniform(10, 60) * MB,
            application="app"))
    use_case = UseCase("p", (Application("app", tuple(channels)),))
    try:
        config = configure(topo, use_case, table_size=16,
                           frequency_hz=500e6, mapping=mapping)
    except AllocationError:
        return
    bounds = analyse(config.allocation)
    sim = FlitLevelSimulator(config, check_contention=True)
    for i, spec in enumerate(channels):
        if rng.random() < 0.5:
            sim.set_traffic(spec.name, BernoulliMessages(
                0.15, 2, 3, seed=seed + i))
        else:
            sim.set_traffic(spec.name, PeriodicBurst(
                1, 2, rng.randint(20, 60), offset_cycles=i))
    result = sim.run(800)
    from repro.usecase.runner import service_latencies_ns
    for spec in channels:
        for latency in service_latencies_ns(result.stats, spec.name):
            assert latency <= bounds[spec.name].latency_ns + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(0, 999), st.integers(0, 999))
def test_meso_stage_pure_one_slot_delay(n_flits, wphase, rphase):
    """Property form of the exhaustive skew test (random phases)."""
    from repro.link.mesochronous import make_stage
    fmt = WordFormat()
    engine = Engine()
    wclk = ClockDomain("w", period_ps=1000, phase_ps=wphase)
    rclk = ClockDomain("r", period_ps=1000, phase_ps=rphase)
    stage = make_stage(engine, "s", wclk, rclk, fmt)

    sent = {}
    for index in range(n_flits):
        slot = 1 + 2 * index
        base = slot * fmt.flit_size
        for pos in range(fmt.flit_size):
            sent[base + pos] = Phit(
                word=(slot << 4) | pos, valid=True,
                eop=pos == fmt.flit_size - 1, word_index=pos)
    driver = _ScriptDriver(stage.writer.inputs[0], sent)
    probe = _Probe(stage.outputs[0])
    engine.add_component(wclk, driver)
    engine.add_wire(wclk, stage.writer.inputs[0])
    engine.add_component(rclk, probe)
    horizon_slots = 2 * n_flits + 4
    engine.run_until(horizon_slots * fmt.flit_size * 1000 + 1000)
    received = [(cycle - 1) // fmt.flit_size
                for cycle, phit in enumerate(probe.samples) if phit.valid
                and phit.word_index == 0]
    expected = [2 + 2 * index for index in range(n_flits)]
    assert received == expected
    assert stage.fifo.max_occupancy <= 4
