"""Tests for the ``repro.design`` design-space explorer subsystem.

Covers the analytical pruning bounds (soundness: a pruned candidate is
really infeasible), the probe cache (bisections stop re-running
identical probes), the mapping optimizer (deterministic, never worse
than its warm start, repairs co-location), the campaign integration
(``mode="design"`` runs are byte-deterministic across process pools),
the Pareto front arithmetic, and the demo's acceptance claim — the
minimum-area feasible point for the Section VII demo workload is the
paper's 2x2 mesh at or below 500 MHz.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ScenarioSpec
from repro.campaign.runner import execute_run
from repro.campaign.spec import TopologySpec
from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.words import WordFormat
from repro.design import (Candidate, DesignExplorer, DesignSpace,
                          DesignSpec, OptimizerSpec, ProbeCache,
                          evaluate_candidate, frequency_lower_bound_hz,
                          min_feasible_frequency, optimize_mapping,
                          pareto_front, prune_candidate,
                          section7_demo_use_case, table_size_scan,
                          workload_from_churn)
from repro.service.churn import ChurnSpec
from repro.topology.builders import mesh
from repro.topology.mapping import round_robin


def _small_use_case(scale: float = 1.0) -> UseCase:
    """Four IPs in a ring of channels: round_robin keeps endpoints on
    distinct NIs on every topology with >= 4 NIs."""
    channels = (
        ChannelSpec("c0", "ip0", "ip1", 40 * MB * scale,
                    max_latency_ns=400.0, application="app"),
        ChannelSpec("c1", "ip1", "ip2", 25 * MB * scale,
                    application="app"),
        ChannelSpec("c2", "ip2", "ip3", 30 * MB * scale,
                    max_latency_ns=500.0, application="app"),
        ChannelSpec("c3", "ip3", "ip0", 20 * MB * scale,
                    application="app"),
    )
    return UseCase("small", (Application("app", channels),))


class TestDesignSpace:
    def test_candidates_cross_product_and_order(self):
        space = DesignSpace(
            topologies=(TopologySpec(kind="mesh", cols=2, rows=2),
                        TopologySpec(kind="ring", cols=4)),
            table_sizes=(8, 16), data_widths=(32,),
            mappings=("optimized", "round_robin"))
        candidates = space.candidates()
        assert len(candidates) == 2 * 2 * 1 * 2
        assert [c.label for c in candidates] == \
            sorted(c.label for c in candidates)
        assert candidates == space.candidates()

    def test_invalid_spaces_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignSpace(topologies=())
        with pytest.raises(ConfigurationError):
            DesignSpace(topologies=(TopologySpec(),), table_sizes=(1,))
        with pytest.raises(ConfigurationError):
            DesignSpace(topologies=(TopologySpec(),),
                        mappings=("telepathic",))

    def test_design_spec_validation(self):
        with pytest.raises(ConfigurationError):
            DesignSpec(use_case=UseCase("empty", ()))
        with pytest.raises(ConfigurationError):
            DesignSpec(use_case=_small_use_case(), mapping="bogus")
        with pytest.raises(ConfigurationError):
            DesignSpec(use_case=_small_use_case(),
                       min_frequency_mhz=800.0, max_frequency_mhz=500.0)

    def test_scenario_design_mode_validation(self):
        from repro.service.churn import ChurnSpec
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="d", mode="design")  # missing DesignSpec
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="d", mode="simulate",
                         design=DesignSpec(use_case=_small_use_case()))
        with pytest.raises(ConfigurationError):
            # Design workloads come from the DesignSpec, never churn.
            ScenarioSpec(name="d", mode="design", churn=ChurnSpec(),
                         design=DesignSpec(use_case=_small_use_case()))


class TestChurnWorkload:
    def test_littles_law_concurrency(self):
        churn = ChurnSpec(n_sessions=100, arrival_rate_per_s=1000.0,
                          mean_duration_s=0.02)
        use_case = workload_from_churn(churn, seed=7)
        assert len(use_case.channels) == 20  # 1000/s x 0.02 s
        half = workload_from_churn(churn, target_admission_rate=0.5,
                                   seed=7)
        assert len(half.channels) == 10

    def test_deterministic_and_class_grouped(self):
        churn = ChurnSpec(n_sessions=100, arrival_rate_per_s=2000.0)
        a = workload_from_churn(churn, seed=3)
        b = workload_from_churn(churn, seed=3)
        assert [c.name for c in a.channels] == [c.name for c in b.channels]
        class_names = {cls.name for cls in churn.classes}
        for app in a.applications:
            assert app.name in class_names
        c = workload_from_churn(churn, seed=4)
        assert [ch.src_ip for ch in a.channels] != \
            [ch.src_ip for ch in c.channels]

    def test_bad_admission_rate(self):
        with pytest.raises(ConfigurationError):
            workload_from_churn(ChurnSpec(), target_admission_rate=0.0)


class TestPruneSoundness:
    def test_oversubscribed_ni_is_pruned_and_really_infeasible(self):
        topo = mesh(2, 2, nis_per_router=2)
        # 6 channels fan out of one hub NI at rates no 16-slot table
        # carries at 200 MHz.
        channels = tuple(
            ChannelSpec(f"f{i}", "hub", f"leaf{i}", 120 * MB,
                        application="fan")
            for i in range(6))
        use_case = UseCase("fan", (Application("fan", channels),))
        mapping = round_robin(list(use_case.ips), topo)
        ceiling = 200e6
        verdict = prune_candidate(topo, use_case, mapping,
                                  table_size=16, frequency_hz=ceiling)
        assert not verdict.feasible_possible
        assert verdict.reasons
        with pytest.raises(AllocationError):
            configure(topo, use_case, table_size=16,
                      frequency_hz=ceiling, mapping=mapping)

    def test_feasible_candidate_not_pruned(self):
        topo = mesh(2, 2, nis_per_router=2)
        use_case = _small_use_case()
        mapping = round_robin(list(use_case.ips), topo)
        verdict = prune_candidate(topo, use_case, mapping,
                                  table_size=16, frequency_hz=500e6)
        assert verdict.feasible_possible
        assert verdict.checks > 0
        configure(topo, use_case, table_size=16, frequency_hz=500e6,
                  mapping=mapping)  # must not raise

    def test_latency_floor_fires(self):
        topo = mesh(4, 1, nis_per_router=1)
        channels = (ChannelSpec("far", "ip0", "ip3", 1 * MB,
                                max_latency_ns=20.0, application="a"),)
        use_case = UseCase("tight", (Application("a", channels),))
        mapping = round_robin(["ip0", "ip1", "ip2", "ip3"], topo)
        verdict = prune_candidate(topo, use_case, mapping,
                                  table_size=8, frequency_hz=500e6)
        assert not verdict.feasible_possible
        assert any("latency floor" in reason
                   for reason in verdict.reasons)

    def test_frequency_lower_bound_is_sound(self):
        topo = mesh(2, 2, nis_per_router=1)
        use_case = _small_use_case(scale=2.0)
        mapping = round_robin(list(use_case.ips), topo)
        floor = frequency_lower_bound_hz(topo, use_case, mapping)
        assert floor > 0
        found = min_feasible_frequency(topo, use_case, mapping,
                                       table_size=16, low_hz=50e6,
                                       high_hz=2e9)
        assert found >= floor * (1 - 1e-9)


class TestProbeCache:
    def _counting(self, monkeypatch):
        import repro.design.search as search
        calls = {"n": 0}
        real = configure

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(search, "configure", counting)
        return calls

    def test_repeat_search_is_free(self, monkeypatch):
        calls = self._counting(monkeypatch)
        topo = mesh(2, 2, nis_per_router=1)
        use_case = _small_use_case()
        mapping = round_robin(list(use_case.ips), topo)
        cache = ProbeCache()
        first = min_feasible_frequency(topo, use_case, mapping,
                                       table_size=16, cache=cache)
        cold = calls["n"]
        assert cold > 0
        again = min_feasible_frequency(topo, use_case, mapping,
                                       table_size=16, cache=cache)
        assert again == first
        assert calls["n"] == cold  # every probe answered from cache

    def test_monotone_bounds_answer_new_frequencies(self, monkeypatch):
        calls = self._counting(monkeypatch)
        topo = mesh(2, 2, nis_per_router=1)
        use_case = _small_use_case()
        mapping = round_robin(list(use_case.ips), topo)
        cache = ProbeCache()
        found = min_feasible_frequency(topo, use_case, mapping,
                                       table_size=16, cache=cache)
        before = calls["n"]
        # A fresh bisection over a *wider* interval: the feasible top
        # and everything below the known-infeasible floor come from the
        # monotone bounds, so the narrower result needs fewer probes
        # than a cold search.
        cache_hits_before = cache.hits
        min_feasible_frequency(topo, use_case, mapping, table_size=16,
                               low_hz=50e6, high_hz=3e9, cache=cache)
        assert cache.hits > cache_hits_before
        assert calls["n"] > before  # some new buckets were probed...
        assert found > 0

    def test_failures_are_cached(self, monkeypatch):
        calls = self._counting(monkeypatch)
        topo = mesh(2, 2, nis_per_router=1)
        use_case = _small_use_case(scale=100.0)  # hopeless workload
        mapping = round_robin(list(use_case.ips), topo)
        cache = ProbeCache()
        with pytest.raises(AllocationError):
            min_feasible_frequency(topo, use_case, mapping,
                                   table_size=8, high_hz=400e6,
                                   cache=cache)
        cold = calls["n"]
        with pytest.raises(AllocationError):
            min_feasible_frequency(topo, use_case, mapping,
                                   table_size=8, high_hz=400e6,
                                   cache=cache)
        assert calls["n"] == cold

    def test_tight_tolerance_stays_exact(self):
        """Monotone-bound answers hold at any tolerance: the cached
        search must agree with an uncached one to the tolerance."""
        topo = mesh(2, 2, nis_per_router=1)
        use_case = _small_use_case()
        mapping = round_robin(list(use_case.ips), topo)
        cached = min_feasible_frequency(topo, use_case, mapping,
                                        table_size=16,
                                        tolerance_hz=0.5e6,
                                        cache=ProbeCache())
        plain = min_feasible_frequency(topo, use_case, mapping,
                                       table_size=16,
                                       tolerance_hz=0.5e6)
        assert cached == plain
        configure(topo, use_case, table_size=16, frequency_hz=cached,
                  mapping=mapping)  # the found point really allocates


class TestMappingOptimizer:
    def test_deterministic_and_no_worse_than_warm_start(self):
        topo = mesh(3, 2, nis_per_router=2)
        use_case = section7_demo_use_case()
        first = optimize_mapping(topo, use_case, seed=11)
        second = optimize_mapping(topo, use_case, seed=11)
        assert first.mapping.ip_to_ni == second.mapping.ip_to_ni
        assert first.final_cost <= first.start_cost + 1e-6
        assert first.colocated_channels == 0
        first.mapping.validate(topo)
        other = optimize_mapping(topo, use_case, seed=12)
        assert other.final_cost <= other.start_cost + 1e-6

    def test_zero_iterations_returns_warm_start(self):
        topo = mesh(2, 2, nis_per_router=2)
        use_case = _small_use_case()
        result = optimize_mapping(topo, use_case, seed=5,
                                  spec=OptimizerSpec(iterations=0))
        assert result.moves_accepted == 0
        assert result.final_cost <= result.start_cost + 1e-6

    def test_optimizer_spec_validation(self):
        with pytest.raises(ConfigurationError):
            OptimizerSpec(iterations=-1)
        with pytest.raises(ConfigurationError):
            OptimizerSpec(cooling=1.5)


class TestEvaluateCandidate:
    def test_ok_record_shape(self):
        design = DesignSpec(use_case=_small_use_case(),
                            max_frequency_mhz=800.0)
        record = evaluate_candidate(
            TopologySpec(kind="mesh", cols=2, rows=2, nis_per_router=2),
            design, 16, seed=1)
        assert record["status"] == "ok"
        result = record["result"]
        assert result["operating_frequency_mhz"] <= 800.0
        assert result["area"]["total_um2"] > 0
        assert result["n_channels"] == 4
        json.dumps(record)

    def test_wider_words_cost_more_silicon(self):
        records = [
            evaluate_candidate(
                TopologySpec(kind="mesh", cols=2, rows=2,
                             nis_per_router=2),
                DesignSpec(use_case=_small_use_case(), data_width=width,
                           max_frequency_mhz=800.0),
                16, seed=1)
            for width in (32, 64)]
        assert all(r["status"] == "ok" for r in records)
        assert records[1]["result"]["area"]["total_um2"] > \
            records[0]["result"]["area"]["total_um2"]

    def test_hopeless_candidate_is_pruned(self):
        design = DesignSpec(use_case=_small_use_case(scale=100.0),
                            max_frequency_mhz=300.0)
        record = evaluate_candidate(
            TopologySpec(kind="mesh", cols=2, rows=2, nis_per_router=1),
            design, 8, seed=1)
        assert record["status"] == "pruned"
        assert record["prune"]["reasons"]
        json.dumps(record)

    def test_pruning_never_changes_the_verdict(self):
        """prune=True may only skip work, not flip feasibility."""
        for scale in (1.0, 30.0):
            use_case = _small_use_case(scale=scale)
            records = [
                evaluate_candidate(
                    TopologySpec(kind="mesh", cols=2, rows=2,
                                 nis_per_router=2),
                    DesignSpec(use_case=use_case, prune=prune,
                               max_frequency_mhz=600.0),
                    16, seed=1)
                for prune in (True, False)]
            feasible = [r["status"] == "ok" for r in records]
            assert feasible[0] == feasible[1]


class TestCampaignIntegration:
    def _spec(self) -> CampaignSpec:
        design = DesignSpec(use_case=_small_use_case(),
                            max_frequency_mhz=800.0)
        scenarios = tuple(
            ScenarioSpec(name=f"m{cols}x2-t{size}", mode="design",
                         topology=TopologySpec(kind="mesh", cols=cols,
                                               rows=2, nis_per_router=2),
                         table_size=size, design=design)
            for cols in (2, 3) for size in (8, 16))
        return CampaignSpec(name="design-tiny", scenarios=scenarios,
                            seeds=(1,))

    def test_execute_run_dispatches_design_mode(self):
        record = execute_run(self._spec().expand()[0])
        assert record["mode"] == "design"
        assert record["status"] in ("ok", "pruned", "infeasible")
        json.dumps(record)

    def test_serial_and_parallel_byte_identical(self):
        spec = self._spec()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        assert serial.to_json() == parallel.to_json()
        assert serial.n_runs == 4

    def test_summary_rows_render(self):
        from repro.experiments.report import format_table
        result = CampaignRunner(self._spec(), workers=1).run()
        rows = result.summary_rows()
        table = format_table(rows, title="design")
        assert "area_mm2" in table

    def test_design_campaign_preset(self):
        from repro.campaign import design_campaign, preset_by_name
        spec = design_campaign()
        assert all(s.mode == "design" for s in spec.scenarios)
        assert len(spec.scenarios) == 10
        assert preset_by_name("design").name == "design"
        assert preset_by_name("design_campaign").name == "design"
        with pytest.raises(ConfigurationError) as excinfo:
            preset_by_name("nope")
        assert "design_campaign" in str(excinfo.value)


class TestParetoFront:
    @staticmethod
    def _record(run_id, area, mhz, slack):
        return {"run_id": run_id, "status": "ok", "topology": run_id,
                "table_size": 16,
                "result": {"area": {"total_um2": area},
                           "operating_frequency_mhz": mhz,
                           "guarantee_slack": slack}}

    def test_dominated_points_removed(self):
        a = self._record("a", 100.0, 400.0, 0.5)
        b = self._record("b", 120.0, 450.0, 0.4)   # dominated by a
        c = self._record("c", 150.0, 300.0, 0.1)   # best frequency
        d = self._record("d", 110.0, 500.0, 0.9)   # best slack
        front = pareto_front([b, d, c, a])
        ids = [r["run_id"] for r in front]
        assert ids == ["a", "d", "c"]  # sorted by area then frequency

    def test_failed_records_ignored(self):
        bad = {"run_id": "x", "status": "pruned"}
        good = self._record("g", 1.0, 1.0, 1.0)
        assert [r["run_id"] for r in pareto_front([bad, good])] == ["g"]

    def test_identical_points_all_kept(self):
        a = self._record("a", 100.0, 400.0, 0.5)
        b = self._record("b", 100.0, 400.0, 0.5)
        assert len(pareto_front([a, b])) == 2


class TestExplorerAndDemo:
    def test_mini_exploration_deterministic(self):
        space = DesignSpace(
            topologies=(TopologySpec(kind="mesh", cols=2, rows=2,
                                     nis_per_router=2),
                        TopologySpec(kind="ring", cols=4,
                                     nis_per_router=2)),
            table_sizes=(16,), max_frequency_mhz=800.0)
        explorer = DesignExplorer(use_case=_small_use_case(), space=space,
                                  workers=1)
        first = explorer.explore()
        second = explorer.explore()
        assert first.to_json() == second.to_json()
        assert first.n_candidates == 2
        assert first.front

    def test_demo_rediscovers_the_papers_point(self):
        from repro.design import demo_space
        report = DesignExplorer(use_case=section7_demo_use_case(),
                                space=demo_space(), workers=2).explore()
        chosen = report.min_area_point()
        assert chosen is not None
        assert str(chosen["topology"]).startswith("mesh2x2")
        assert chosen["result"]["operating_frequency_mhz"] <= 500.0
        assert report.count("ok") >= 5  # a real front, not a lone point
        assert report.n_candidates == 18
        # The report is canonical JSON end to end.
        json.loads(report.to_json())

    def test_explorer_requires_a_workload(self):
        with pytest.raises(ConfigurationError):
            DesignExplorer(space=DesignSpace(
                topologies=(TopologySpec(),)))


class TestTableSizeScanColumns:
    def test_synthesis_columns_present_when_feasible(self):
        topo = mesh(2, 2, nis_per_router=2)
        use_case = _small_use_case()
        mapping = round_robin(list(use_case.ips), topo)
        rows = table_size_scan(topo, use_case, mapping,
                               frequency_hz=500e6,
                               table_sizes=[2, 16, 32])
        assert [r.table_size for r in rows] == [2, 16, 32]
        for row in rows:
            if row.feasible:
                assert row.network_area_um2 > 0
                assert row.fmax_mhz > 0
                assert set(row.to_record()) >= {"network_area_um2",
                                                "fmax_mhz"}
            else:
                assert row.network_area_um2 is None
                assert row.fmax_mhz is None
        feasible = [r for r in rows if r.feasible]
        assert feasible
        # NI slot tables grow with the table size: area rises.
        areas = [r.network_area_um2 for r in feasible]
        assert areas == sorted(areas)

    def test_deprecated_shim_still_works(self):
        import importlib
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = importlib.import_module("repro.core.exploration")
        assert shim.min_feasible_frequency is min_feasible_frequency
        from repro.core import TableSizeResult as core_result
        from repro.design.search import TableSizeResult
        assert core_result is TableSizeResult
