"""Tests for live reconfiguration and the latency-rate dataflow model."""

from __future__ import annotations

import pytest

from repro.core.allocation import SlotAllocator
from repro.core.application import Application
from repro.core.connection import MB, ChannelSpec
from repro.core.dataflow import (analyse_dataflow, backlog_bound_bytes,
                                 busy_period_latency_ns, latency_rate_of)
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.reconfiguration import ReconfigurationManager
from repro.core.words import WordFormat
from repro.topology.builders import mesh
from repro.topology.mapping import round_robin


def _app(name, pairs, rate=40 * MB):
    return Application(name, tuple(
        ChannelSpec(f"{name}_c{i}", src, dst, rate, application=name)
        for i, (src, dst) in enumerate(pairs)))


@pytest.fixture
def manager():
    topo = mesh(2, 2, nis_per_router=1)
    ips = [f"ip{i}" for i in range(8)]
    mapping = round_robin(ips, topo)
    allocator = SlotAllocator(topo, table_size=16, frequency_hz=500e6)
    return ReconfigurationManager(allocator, mapping)


class TestReconfiguration:
    def test_start_stop_cycle(self, manager):
        app_a = _app("A", [("ip0", "ip1"), ("ip2", "ip3")])
        report = manager.start_application(app_a)
        assert report.action == "start"
        assert report.untouched  # nothing else was running
        assert manager.is_running("A")
        stop = manager.stop_application("A")
        assert stop.channels_changed == ("A_c0", "A_c1")
        assert not manager.is_running("A")

    def test_running_apps_untouched_by_start(self, manager):
        app_a = _app("A", [("ip0", "ip1"), ("ip2", "ip3")])
        app_b = _app("B", [("ip4", "ip5"), ("ip6", "ip7")])
        manager.start_application(app_a)
        slots_before = {
            name: ca.slots
            for name, ca in manager.allocation.channels.items()}
        report = manager.start_application(app_b)
        assert report.untouched
        for name, slots in slots_before.items():
            assert manager.allocation.channel(name).slots == slots

    def test_running_apps_untouched_by_stop(self, manager):
        app_a = _app("A", [("ip0", "ip1")])
        app_b = _app("B", [("ip4", "ip5")])
        manager.start_application(app_a)
        manager.start_application(app_b)
        report = manager.stop_application("A")
        assert report.untouched
        assert manager.running_applications == ("B",)

    def test_switch(self, manager):
        manager.start_application(_app("A", [("ip0", "ip1")]))
        manager.start_application(_app("B", [("ip2", "ip3")]))
        stop_r, start_r = manager.switch(
            "A", _app("C", [("ip4", "ip5")]))
        assert stop_r.untouched and start_r.untouched
        assert set(manager.running_applications) == {"B", "C"}

    def test_double_start_rejected(self, manager):
        manager.start_application(_app("A", [("ip0", "ip1")]))
        with pytest.raises(ConfigurationError):
            manager.start_application(_app("A", [("ip2", "ip3")]))

    def test_stop_unknown_rejected(self, manager):
        with pytest.raises(ConfigurationError):
            manager.stop_application("ghost")

    def test_failed_admission_leaves_no_trace(self, manager):
        # Saturate the network, then try to admit an impossible app.
        manager.start_application(
            _app("big", [("ip0", "ip1")], rate=800 * MB))
        snapshot = {
            name: ca.slots
            for name, ca in manager.allocation.channels.items()}
        with pytest.raises(AllocationError):
            manager.start_application(
                _app("huge", [("ip0", "ip1")], rate=800 * MB))
        assert not manager.is_running("huge")
        for name, slots in snapshot.items():
            assert manager.allocation.channel(name).slots == slots
        manager.allocation.validate()

    def test_history_records_everything(self, manager):
        manager.start_application(_app("A", [("ip0", "ip1")]))
        manager.stop_application("A")
        assert [r.action for r in manager.history] == ["start", "stop"]

    def test_slots_reusable_after_stop(self, manager):
        """Stopping frees capacity new applications can claim."""
        big = _app("big", [("ip0", "ip1")], rate=800 * MB)
        manager.start_application(big)
        with pytest.raises(AllocationError):
            manager.start_application(
                _app("second", [("ip0", "ip1")], rate=800 * MB))
        manager.stop_application("big")
        manager.start_application(
            _app("second", [("ip0", "ip1")], rate=800 * MB))
        assert manager.is_running("second")


class TestReconfigurationInterleavings:
    """Property tests: long randomized start/stop interleavings.

    Whatever order applications come and go in, three invariants must
    hold throughout: reservations of distinct applications are disjoint
    (``Allocation.validate``), every transition leaves the surviving
    applications' reservations bit-identical (``untouched``), and
    stopping an application recovers exactly its slots.
    """

    N_STEPS = 120

    def _pool(self, rng):
        """A pool of candidate applications over a 3x3 mesh's 9 IPs."""
        from repro.topology.builders import mesh
        from repro.topology.mapping import round_robin

        topo = mesh(3, 3, nis_per_router=1)
        ips = [f"ip{i}" for i in range(9)]
        mapping = round_robin(ips, topo)
        allocator = SlotAllocator(topo, table_size=16, frequency_hz=500e6)
        apps = []
        for k in range(10):
            n_channels = rng.randint(1, 3)
            pairs = []
            for _ in range(n_channels):
                src, dst = rng.sample(ips, 2)
                pairs.append((src, dst))
            apps.append(_app(f"P{k}", pairs,
                             rate=rng.choice([10, 25, 40, 60]) * MB))
        return ReconfigurationManager(allocator, mapping), apps

    @pytest.mark.parametrize("seed", [1, 7, 2009])
    def test_long_interleaving_preserves_isolation(self, seed):
        import random
        rng = random.Random(seed)
        manager, apps = self._pool(rng)
        by_name = {a.name: a for a in apps}
        link_count = len(manager.allocation.link_tables)

        def total_reserved():
            return sum(len(t.reserved_slots())
                       for t in manager.allocation.link_tables.values())

        expected_slots: dict[str, int] = {}  # app -> slots it holds
        for step in range(self.N_STEPS):
            running = list(manager.running_applications)
            stoppable = [n for n in running]
            startable = [a.name for a in apps if a.name not in running]
            if startable and (not stoppable or rng.random() < 0.55):
                name = rng.choice(startable)
                before_total = total_reserved()
                try:
                    report = manager.start_application(by_name[name])
                except AllocationError:
                    # Full network: a failed start must leave no trace.
                    assert total_reserved() == before_total
                    manager.allocation.validate()
                    continue
                assert report.untouched, (
                    f"start of {name!r} disturbed a running application "
                    f"at step {step}")
                expected_slots[name] = total_reserved() - before_total
                assert expected_slots[name] > 0
            else:
                name = rng.choice(stoppable)
                before_total = total_reserved()
                report = manager.stop_application(name)
                assert report.untouched, (
                    f"stop of {name!r} disturbed a running application "
                    f"at step {step}")
                # Full slot recovery: exactly the slots the application
                # acquired at start are freed by its stop.
                freed = before_total - total_reserved()
                assert freed == expected_slots.pop(name)
            # Disjointness / bookkeeping: contention-free throughout.
            manager.allocation.validate()
            assert len(manager.allocation.link_tables) == link_count

        for name in list(manager.running_applications):
            manager.stop_application(name)
            manager.allocation.validate()
        assert total_reserved() == 0, "stopping everything must empty " \
            "every link table"
        assert all(r.untouched for r in manager.history)


class TestDataflow:
    def _server(self, slots=(0, 8), table=16):
        from repro.core.path import make_path
        from repro.topology.builders import single_router
        from repro.core.allocation import ChannelAllocation
        topo = single_router(2)
        path = make_path(topo, "ni0_0_0", ["r0_0"], "ni0_0_1")
        ca = ChannelAllocation(
            spec=ChannelSpec("c", "a", "b", 50 * MB),
            path=path, slots=slots)
        return latency_rate_of(ca, table, 500e6, WordFormat())

    def test_theta_matches_analysis_bound(self):
        server = self._server()
        # gap 8 + traversal 2 = 10 slots = 30 cycles = 60 ns.
        assert server.theta_ns == pytest.approx(60.0)

    def test_rho_matches_guaranteed_rate(self):
        server = self._server()
        assert server.rho_bytes_per_s == pytest.approx(2 * 8 / 96e-9)

    def test_service_curve_zero_before_theta(self):
        server = self._server()
        assert server.service_curve(59.9) == 0.0
        assert server.service_curve(60.0 + 96.0) == pytest.approx(16.0)

    def test_busy_period_latency(self):
        server = self._server()
        # A 3-message burst of 8 B messages: last completes within
        # theta + 24 B / rho.
        bound = busy_period_latency_ns(server, burst_bytes=24,
                                       message_bytes=8)
        assert bound == pytest.approx(60.0 + 24 / (16 / 96e-9) * 1e9)

    def test_backlog_bound(self):
        server = self._server()
        backlog = backlog_bound_bytes(
            server, arrival_rate_bytes_per_s=100e6, burst_bytes=32)
        assert backlog == pytest.approx(32 + 100e6 * 60e-9)

    def test_over_rate_arrivals_rejected(self):
        server = self._server()
        with pytest.raises(ConfigurationError):
            backlog_bound_bytes(server,
                                arrival_rate_bytes_per_s=1e9,
                                burst_bytes=8)

    def test_simulation_respects_busy_period_bound(self, mesh_config):
        """Measured burst latencies never exceed the latency-rate bound."""
        from repro.simulation.flitsim import FlitLevelSimulator
        from repro.simulation.traffic import PeriodicBurst
        fmt = mesh_config.fmt
        servers = analyse_dataflow(mesh_config.allocation)
        burst_messages = 4
        sim = FlitLevelSimulator(mesh_config)
        for name in mesh_config.allocation.channels:
            sim.set_traffic(name, PeriodicBurst(
                burst_messages, fmt.payload_words_per_flit, 400))
        result = sim.run(3000)
        for name, server in servers.items():
            deliveries = result.stats.channel(name).deliveries
            assert deliveries
            bound = busy_period_latency_ns(
                server,
                burst_bytes=burst_messages * fmt.payload_bytes_per_flit,
                message_bytes=fmt.payload_bytes_per_flit)
            for record in deliveries:
                assert record.latency_ns <= bound + 1e-6
